package repro

// One benchmark per figure/table of the paper's evaluation, each running
// a reduced-scale instance of the corresponding experiment (the full
// sweeps live behind `go run ./cmd/experiments`). Custom metrics attach
// the reproduced quantity to the benchmark output: reliability for the
// reliability figures, bytes/events/duplicates/parasites per process for
// the frugality figures. Ablation and substrate micro-benchmarks follow.

import (
	"math/rand"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/exp"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/proto"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topic"
	"repro/internal/transport"
	"repro/internal/workload"
)

// rwpScenario is the reduced random-waypoint environment: the paper's
// 6 nodes/km^2 density at 30 nodes.
func rwpScenario(b *testing.B, speedMin, speedMax, frac float64, seed int64) netsim.Scenario {
	b.Helper()
	kind := netsim.RandomWaypoint
	if speedMax == 0 {
		kind = netsim.StaticNodes
	}
	return netsim.Scenario{
		Nodes: 30,
		Seed:  seed,
		Mobility: netsim.MobilitySpec{
			Kind:     kind,
			Area:     geo.NewRect(2236, 2236), // 5 km^2
			MinSpeed: speedMin,
			MaxSpeed: speedMax,
			Pause:    time.Second,
		},
		MAC:                mac.DefaultConfig(339),
		Protocol:           netsim.FrugalSpec(netsim.CoreTuning{HBUpperBound: time.Second, UseSpeed: true}),
		SubscriberFraction: frac,
		Warmup:             20 * time.Second,
	}
}

func cityScenario(seed int64, hbUpper time.Duration, frac float64) netsim.Scenario {
	return netsim.Scenario{
		Nodes: 15,
		Seed:  seed,
		Mobility: netsim.MobilitySpec{
			Kind:      netsim.CitySection,
			StopProb:  0.3,
			StopMin:   2 * time.Second,
			StopMax:   10 * time.Second,
			DestPause: 5 * time.Second,
		},
		MAC:                mac.DefaultConfig(44),
		Protocol:           netsim.FrugalSpec(netsim.CoreTuning{HBUpperBound: hbUpper, UseSpeed: true}),
		SubscriberFraction: frac,
		Warmup:             20 * time.Second,
	}
}

func runReliability(b *testing.B, sc netsim.Scenario, publisher int, validity time.Duration) float64 {
	b.Helper()
	sc.Publications = []netsim.Publication{{Publisher: publisher, Validity: validity}}
	sc.Measure = validity + 5*time.Second
	res, err := netsim.Run(sc)
	if err != nil {
		b.Fatal(err)
	}
	return res.Reliability()
}

// BenchmarkFig11Reliability regenerates one point of Figure 11:
// reliability at 10 m/s, 80% subscribers, 120 s validity (random
// waypoint).
func BenchmarkFig11Reliability(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		rel += runReliability(b, rwpScenario(b, 10, 10, 0.8, int64(i)+1), -1, 120*time.Second)
	}
	b.ReportMetric(rel/float64(b.N), "reliability")
}

// BenchmarkFig12Heterogeneous regenerates one point of Figure 12:
// heterogeneous 1-40 m/s speeds, 60% subscribers, 120 s validity.
func BenchmarkFig12Heterogeneous(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		rel += runReliability(b, rwpScenario(b, 1, 40, 0.6, int64(i)+1), -1, 120*time.Second)
	}
	b.ReportMetric(rel/float64(b.N), "reliability")
}

// BenchmarkFig13HeartbeatPeriod regenerates one point of Figure 13: city
// section with a 3 s heartbeat upper bound, validity 150 s.
func BenchmarkFig13HeartbeatPeriod(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		rel += runReliability(b, cityScenario(int64(i)+1, 3*time.Second, 1.0), i%15, 150*time.Second)
	}
	b.ReportMetric(rel/float64(b.N), "reliability")
}

// BenchmarkFig14Subscribers regenerates one point of Figure 14: city
// section, 60% subscribers.
func BenchmarkFig14Subscribers(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		rel += runReliability(b, cityScenario(int64(i)+1, time.Second, 0.6), -1, 150*time.Second)
	}
	b.ReportMetric(rel/float64(b.N), "reliability")
}

// BenchmarkFig15PublisherSpread regenerates Figure 15's quantity: the
// reliability spread across publishers (city section, 100% subscribers).
func BenchmarkFig15PublisherSpread(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		lo, hi := 1.0, 0.0
		for pub := 0; pub < 15; pub += 5 {
			rel := runReliability(b, cityScenario(int64(i)+1, time.Second, 1.0), pub, 150*time.Second)
			if rel < lo {
				lo = rel
			}
			if rel > hi {
				hi = rel
			}
		}
		spread += hi - lo
	}
	b.ReportMetric(spread/float64(b.N), "spread")
}

// BenchmarkFig16Validity regenerates one point of Figure 16: city
// section, validity 75 s.
func BenchmarkFig16Validity(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		rel += runReliability(b, cityScenario(int64(i)+1, time.Second, 1.0), i%15, 75*time.Second)
	}
	b.ReportMetric(rel/float64(b.N), "reliability")
}

// frugalityRun executes one reduced frugality cell (Figures 17-20).
func frugalityRun(b *testing.B, proto string, events int, frac float64, seed int64) *netsim.Result {
	b.Helper()
	sc := rwpScenario(b, 10, 10, frac, seed)
	if proto != "frugal" {
		sc.Protocol = netsim.ProtocolSpec{Name: proto}
	}
	validity := 60 * time.Second
	for i := 0; i < events; i++ {
		sc.Publications = append(sc.Publications, netsim.Publication{
			Offset:    time.Duration(i) * 500 * time.Millisecond,
			Publisher: -1,
			Validity:  validity,
		})
	}
	sc.Measure = validity
	res, err := netsim.Run(sc)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig17Bandwidth regenerates one cell of Figure 17 for the
// frugal protocol and the best flooding alternative.
func BenchmarkFig17Bandwidth(b *testing.B) {
	var frugal, flood float64
	for i := 0; i < b.N; i++ {
		frugal += frugalityRun(b, "frugal", 5, 0.6, int64(i)+1).AppBytesPerProcess()
		flood += frugalityRun(b, "interests-aware-flooding", 5, 0.6, int64(i)+1).AppBytesPerProcess()
	}
	b.ReportMetric(frugal/float64(b.N), "frugal-B/proc")
	b.ReportMetric(flood/float64(b.N), "flood-B/proc")
}

// BenchmarkFig18EventsSent regenerates one cell of Figure 18.
func BenchmarkFig18EventsSent(b *testing.B) {
	var frugal, flood float64
	for i := 0; i < b.N; i++ {
		frugal += frugalityRun(b, "frugal", 5, 0.6, int64(i)+1).EventsSentPerProcess()
		flood += frugalityRun(b, "simple-flooding", 5, 0.6, int64(i)+1).EventsSentPerProcess()
	}
	b.ReportMetric(frugal/float64(b.N), "frugal-sent/proc")
	b.ReportMetric(flood/float64(b.N), "flood-sent/proc")
}

// BenchmarkFig19Duplicates regenerates one cell of Figure 19.
func BenchmarkFig19Duplicates(b *testing.B) {
	var frugal, flood float64
	for i := 0; i < b.N; i++ {
		frugal += frugalityRun(b, "frugal", 5, 0.6, int64(i)+1).DuplicatesPerProcess()
		flood += frugalityRun(b, "interests-aware-flooding", 5, 0.6, int64(i)+1).DuplicatesPerProcess()
	}
	b.ReportMetric(frugal/float64(b.N), "frugal-dup/proc")
	b.ReportMetric(flood/float64(b.N), "flood-dup/proc")
}

// BenchmarkFig20Parasites regenerates one cell of Figure 20 (60%
// interest, where parasites peak).
func BenchmarkFig20Parasites(b *testing.B) {
	var frugal, flood float64
	for i := 0; i < b.N; i++ {
		frugal += frugalityRun(b, "frugal", 5, 0.6, int64(i)+1).ParasitesPerProcess()
		flood += frugalityRun(b, "interests-aware-flooding", 5, 0.6, int64(i)+1).ParasitesPerProcess()
	}
	b.ReportMetric(frugal/float64(b.N), "frugal-par/proc")
	b.ReportMetric(flood/float64(b.N), "flood-par/proc")
}

// ---- ablation benches (DESIGN.md "Ablations") ----

func ablationRun(b *testing.B, seed int64, mut func(*netsim.CoreTuning)) *netsim.Result {
	b.Helper()
	sc := rwpScenario(b, 10, 10, 0.8, seed)
	tun := netsim.CoreTuning{HBUpperBound: 2 * time.Second, UseSpeed: true}
	mut(&tun)
	sc.Protocol = netsim.FrugalSpec(tun)
	for i := 0; i < 5; i++ {
		sc.Publications = append(sc.Publications, netsim.Publication{
			Offset:    time.Duration(i) * 500 * time.Millisecond,
			Publisher: -1,
			Validity:  60 * time.Second,
		})
	}
	sc.Measure = 60 * time.Second
	res, err := netsim.Run(sc)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationBackoff compares the proportional back-off against a
// fixed one.
func BenchmarkAblationBackoff(b *testing.B) {
	var paper, fixed float64
	for i := 0; i < b.N; i++ {
		paper += ablationRun(b, int64(i)+1, func(*netsim.CoreTuning) {}).DuplicatesPerProcess()
		fixed += ablationRun(b, int64(i)+1, func(c *netsim.CoreTuning) { c.FixedBackoff = true }).DuplicatesPerProcess()
	}
	b.ReportMetric(paper/float64(b.N), "paper-dup/proc")
	b.ReportMetric(fixed/float64(b.N), "fixed-dup/proc")
}

// BenchmarkAblationSuppression compares cancel-on-overhear on/off.
func BenchmarkAblationSuppression(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		on += ablationRun(b, int64(i)+1, func(*netsim.CoreTuning) {}).DuplicatesPerProcess()
		off += ablationRun(b, int64(i)+1, func(c *netsim.CoreTuning) { c.DisableSuppression = true }).DuplicatesPerProcess()
	}
	b.ReportMetric(on/float64(b.N), "supp-dup/proc")
	b.ReportMetric(off/float64(b.N), "nosupp-dup/proc")
}

// BenchmarkAblationIDExchange compares the id pre-exchange against blind
// pushing.
func BenchmarkAblationIDExchange(b *testing.B) {
	var ids, blind float64
	for i := 0; i < b.N; i++ {
		ids += ablationRun(b, int64(i)+1, func(*netsim.CoreTuning) {}).AppBytesPerProcess()
		blind += ablationRun(b, int64(i)+1, func(c *netsim.CoreTuning) { c.BlindPush = true }).AppBytesPerProcess()
	}
	b.ReportMetric(ids/float64(b.N), "ids-B/proc")
	b.ReportMetric(blind/float64(b.N), "blind-B/proc")
}

// BenchmarkAblationGC compares GC policies under memory pressure.
func BenchmarkAblationGC(b *testing.B) {
	run := func(seed int64, pol core.GCPolicy) float64 {
		res := ablationRun(b, seed, func(c *netsim.CoreTuning) {
			c.MaxEvents = 3
			c.GCPolicy = pol
		})
		return res.Reliability()
	}
	var paper, fifo float64
	for i := 0; i < b.N; i++ {
		paper += run(int64(i)+1, core.GCPaper)
		fifo += run(int64(i)+1, core.GCFIFO)
	}
	b.ReportMetric(paper/float64(b.N), "paper-rel")
	b.ReportMetric(fifo/float64(b.N), "fifo-rel")
}

// BenchmarkAblationAdaptiveHB compares the adaptive heartbeat against a
// fixed period.
func BenchmarkAblationAdaptiveHB(b *testing.B) {
	var adaptive, fixed float64
	for i := 0; i < b.N; i++ {
		adaptive += ablationRun(b, int64(i)+1, func(*netsim.CoreTuning) {}).Reliability()
		fixed += ablationRun(b, int64(i)+1, func(c *netsim.CoreTuning) { c.DisableAdaptiveHB = true }).Reliability()
	}
	b.ReportMetric(adaptive/float64(b.N), "adaptive-rel")
	b.ReportMetric(fixed/float64(b.N), "fixed-rel")
}

// ---- substrate micro-benchmarks ----

// BenchmarkEngineThroughput measures raw event-queue throughput.
func BenchmarkEngineThroughput(b *testing.B) {
	eng := sim.New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			eng.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	eng.After(0, tick)
	eng.Run()
}

// BenchmarkTopicCovers measures subscription matching.
func BenchmarkTopicCovers(b *testing.B) {
	set := topic.NewSet(
		topic.MustParse(".a.b"),
		topic.MustParse(".c"),
		topic.MustParse(".d.e.f"),
	)
	t := topic.MustParse(".d.e.f.g.h")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !set.Covers(t) {
			b.Fatal("must cover")
		}
	}
}

// BenchmarkMessageEncode measures the real wire encoding.
func BenchmarkMessageEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	msg := event.Events{
		From:      3,
		Receivers: []event.NodeID{1, 2, 5},
		Events: []event.Event{{
			ID:        event.NewID(rng),
			Topic:     topic.MustParse(".a.b.c"),
			Publisher: 3,
			Payload:   make([]byte, 400),
			Validity:  time.Minute,
			Remaining: 30 * time.Second,
		}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wire := event.Marshal(msg)
		if _, err := event.Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMACBroadcast measures medium throughput with 50 nodes in
// range.
func BenchmarkMACBroadcast(b *testing.B) {
	eng := sim.New(1)
	positions := make(map[event.NodeID]geo.Point)
	for i := event.NodeID(0); i < 50; i++ {
		positions[i] = geo.Pt(float64(i)*5, 0)
	}
	medium := mac.New(eng, mac.DefaultConfig(400), staticLocator(positions))
	ports := make([]*mac.Port, 50)
	for i := event.NodeID(0); i < 50; i++ {
		ports[i] = medium.Attach(i, func(mac.Frame) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ports[i%50].Broadcast(event.Heartbeat{From: event.NodeID(i % 50)}, 50)
		eng.Run()
	}
}

type staticLocator map[event.NodeID]geo.Point

func (l staticLocator) Position(id event.NodeID, _ sim.Time) geo.Point { return l[id] }

// benchLargeMedium broadcasts across a 500-node roster spread over a
// 10x20 km strip, so each frame reaches only a handful of neighbors —
// the regime where the medium's spatial grid beats the full-roster
// scan.
func benchLargeMedium(b *testing.B, fullScan bool) {
	b.Helper()
	eng := sim.New(1)
	const n = 500
	positions := make(map[event.NodeID]geo.Point)
	for i := event.NodeID(0); i < n; i++ {
		positions[i] = geo.Pt(float64(i%25)*400, float64(i/25)*1000)
	}
	cfg := mac.DefaultConfig(400)
	cfg.SpeedBounded = true // static roster
	cfg.FullScan = fullScan
	medium := mac.New(eng, cfg, staticLocator(positions))
	ports := make([]*mac.Port, n)
	for i := event.NodeID(0); i < n; i++ {
		ports[i] = medium.Attach(i, func(mac.Frame) {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ports[i%n].Broadcast(event.Heartbeat{From: event.NodeID(i % n)}, 50)
		eng.Run()
	}
}

// BenchmarkMACBroadcastLarge measures grid-indexed medium throughput at
// 500 sparse nodes.
func BenchmarkMACBroadcastLarge(b *testing.B) { benchLargeMedium(b, false) }

// BenchmarkMACBroadcastAllocs pins the medium's allocation-flat
// contract: with pooled engine timers, pooled transmission records and
// reused scratch buffers, a steady-state broadcast (contention, airtime
// and delivery) must report 0 allocs/op. Messages are pre-boxed so the
// benchmark does not charge the medium for its own interface
// conversions.
func BenchmarkMACBroadcastAllocs(b *testing.B) {
	b.ReportAllocs()
	eng := sim.New(1)
	const n = 500
	positions := make(map[event.NodeID]geo.Point)
	for i := event.NodeID(0); i < n; i++ {
		positions[i] = geo.Pt(float64(i%25)*400, float64(i/25)*1000)
	}
	cfg := mac.DefaultConfig(400)
	cfg.SpeedBounded = true // static roster
	medium := mac.New(eng, cfg, staticLocator(positions))
	ports := make([]*mac.Port, n)
	msgs := make([]event.Message, n)
	for i := event.NodeID(0); i < n; i++ {
		ports[i] = medium.Attach(i, func(mac.Frame) {})
		msgs[i] = event.Heartbeat{From: i}
	}
	for i := 0; i < 2*n; i++ { // warm the pools
		ports[i%n].Broadcast(msgs[i%n], 50)
		eng.Run()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ports[i%n].Broadcast(msgs[i%n], 50)
		eng.Run()
	}
}

// BenchmarkMACBroadcastLargeFullScan is the same roster on the
// reference full scan — compare against BenchmarkMACBroadcastLarge to
// see the O(neighbors) vs O(N) gap.
func BenchmarkMACBroadcastLargeFullScan(b *testing.B) { benchLargeMedium(b, true) }

// ---- megacity enabler micro-benchmarks ----

// BenchmarkShortestPathCached measures warm-cache route queries on the
// 10k-vehicle metro street graph. Each vehicle trip asks the graph for
// a shortest path; the per-source route cache answers from a memoized
// Dijkstra tree, so a warm query costs one tree walk instead of a full
// search — the optimization that moved routing off the top of the
// city-sweep profile.
func BenchmarkShortestPathCached(b *testing.B) {
	cols, rows := netsim.MetroGraphDims(10000)
	g := mobility.NewManhattanStyleGraph(cols, rows)
	v := g.Intersections()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < v; i++ { // warm every source tree
		if _, err := g.ShortestPath(i, (i+v/2)%v); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ShortestPath(rng.Intn(v), rng.Intn(v)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexGridDense measures the MAC medium's spatial-index hot
// pair on the dense row-major cell slab: one incremental Relocate (a
// drifting node) plus one receiver-candidate disc query per op, at a
// 5k roster. The dense slab answers both with zero hash lookups, and
// the reused query buffer keeps the pair allocation-free.
func BenchmarkIndexGridDense(b *testing.B) {
	b.ReportAllocs()
	const n, side = 5000, 3400.0
	g := geo.NewIndexGrid(100, geo.NewRect(side, side), n)
	rng := rand.New(rand.NewSource(1))
	pos := make([]geo.Point, n)
	for i := range pos {
		pos[i] = geo.Pt(rng.Float64()*side, rng.Float64()*side)
		g.Relocate(int32(i), pos[i])
	}
	buf := make([]int32, 0, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % n
		pos[k].X += 37 // drift across cell boundaries (clamped at edges)
		if pos[k].X > side {
			pos[k].X -= side
		}
		g.Relocate(int32(k), pos[k])
		buf = g.AppendDisc(pos[k], 100, buf[:0])
		if len(buf) == 0 {
			b.Fatal("disc query missed its own key")
		}
	}
}

// BenchmarkResultStreaming measures a lean-result run end to end:
// DeliveryLog off, so the runner folds every delivery into per-event
// counters and the streaming latency histogram at delivery time and
// keeps no per-delivery record — the megacity memory contract
// (ARCHITECTURE.md "Memory contracts"). The custom metric surfaces the
// histogram's median publish-to-delivery latency, the number the
// record-free aggregation still has to get right.
func BenchmarkResultStreaming(b *testing.B) {
	var p50 float64
	for i := 0; i < b.N; i++ {
		sc := rwpScenario(b, 10, 10, 0.8, int64(i)+1)
		for j := 0; j < 10; j++ {
			sc.Publications = append(sc.Publications, netsim.Publication{
				Offset:    time.Duration(j) * 500 * time.Millisecond,
				Publisher: -1,
				Validity:  60 * time.Second,
			})
		}
		sc.Measure = 60 * time.Second
		res, err := netsim.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Deliveries) != 0 {
			b.Fatal("lean run kept delivery records")
		}
		p50 += res.Latency.Quantile(0.5)
	}
	b.ReportMetric(p50/float64(b.N), "p50-lat-s")
}

// BenchmarkMetroSweep is the city-scale engine benchmark: one 5k-node
// metro run (the metro-5k registry scenario — 11.4 km^2 Manhattan-style
// grid, diurnal Zipf traffic with churn waves) on a shortened
// measurement window per iteration. This is the number the timer wheel,
// the incremental spatial index, the route cache, the dense grids and
// the allocation-flat MAC/runner hot paths were built for; the CI
// benchjson guardrail diffs it against the committed BENCH_pr5.json
// baseline per run.
func BenchmarkMetroSweep(b *testing.B) {
	def, ok := netsim.LookupScenario("metro-5k")
	if !ok {
		b.Fatal("metro-5k scenario not registered")
	}
	var rel float64
	for i := 0; i < b.N; i++ {
		sc := def.Instantiate(int64(i) + 1)
		sc.Warmup = 5 * time.Second
		sc.Measure = 15 * time.Second
		res, err := netsim.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		rel += res.Reliability()
	}
	b.ReportMetric(rel/float64(b.N), "reliability")
}

// BenchmarkTiledMetroSweep is BenchmarkMetroSweep sharded across four
// geo tiles (the tile-parallel runner): same city, same shortened
// window, byte-identical results. On multi-core hosts the handler fan
// and parallel window prepare cut the wall clock; on a single core the
// runner degrades to inline delivery, so the diff against
// BenchmarkMetroSweep also guards the tiled path's serial overhead.
func BenchmarkTiledMetroSweep(b *testing.B) {
	def, ok := netsim.LookupScenario("metro-5k")
	if !ok {
		b.Fatal("metro-5k scenario not registered")
	}
	var rel float64
	for i := 0; i < b.N; i++ {
		sc := def.Instantiate(int64(i) + 1)
		sc.Warmup = 5 * time.Second
		sc.Measure = 15 * time.Second
		sc.Tiles = 4
		res, err := netsim.Run(sc)
		if err != nil {
			b.Fatal(err)
		}
		if res.Tile == nil || res.Tile.Tiles != 4 {
			b.Fatal("run did not shard across 4 tiles")
		}
		rel += res.Reliability()
	}
	b.ReportMetric(rel/float64(b.N), "reliability")
}

// BenchmarkScenarioSweep runs one reduced pass of the registry-backed
// scenarios family: the manhattan urban-VANET environment swept across
// the frugal protocol and the baselines (the CI smoke for the scenario
// registry).
func BenchmarkScenarioSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := exp.ScenarioSweep("manhattan", exp.Options{Seeds: 1})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Tables) != 1 {
			b.Fatal("empty scenario sweep output")
		}
	}
}

// BenchmarkSweepParallel runs a reduced frugality-style sweep (16
// independent reliability points) through the experiment worker pool at
// NumCPU parallelism; compare with BenchmarkSweepSerial for the
// wall-clock gain on multicore hardware.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkSweepSerial is the same sweep at parallelism 1.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, 1) }

func benchSweep(b *testing.B, parallel int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := exp.Fig12(exp.Options{Seeds: 1, Parallel: parallel})
		if err != nil {
			b.Fatal(err)
		}
		if len(out.Tables) == 0 {
			b.Fatal("empty sweep output")
		}
	}
}

// BenchmarkMobilityPosition measures trajectory queries.
func BenchmarkMobilityPosition(b *testing.B) {
	w := mobility.NewWaypoint(mobility.WaypointConfig{
		Area:     geo.NewRect(5000, 5000),
		MinSpeed: 1,
		MaxSpeed: 40,
		Pause:    time.Second,
	}, rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Position(sim.Seconds(float64(i % 3600)))
	}
}

// BenchmarkFullScenario measures one complete mid-size simulation per
// iteration: the end-to-end cost of reproducing a reliability point.
func BenchmarkFullScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runReliability(b, rwpScenario(b, 10, 10, 0.8, int64(i)+1), -1, 60*time.Second)
	}
}

// BenchmarkExtStorm compares the frugal protocol with the broadcast-storm
// schemes (Ni et al.) at 180 s validity: the single-shot schemes cannot
// exploit mobility, so their reliability stays far below.
func BenchmarkExtStorm(b *testing.B) {
	var frugal, storm float64
	for i := 0; i < b.N; i++ {
		sc := rwpScenario(b, 10, 10, 0.8, int64(i)+1)
		frugal += runReliability(b, sc, -1, 120*time.Second)
		sc2 := rwpScenario(b, 10, 10, 0.8, int64(i)+1)
		sc2.Protocol = netsim.ProtocolSpec{Name: "probabilistic-broadcast"}
		storm += runReliability(b, sc2, -1, 120*time.Second)
	}
	b.ReportMetric(frugal/float64(b.N), "frugal-rel")
	b.ReportMetric(storm/float64(b.N), "storm-rel")
}

// BenchmarkGossipVsFrugal is the CI smoke for the protocol registry: a
// reduced scenario pass comparing the push-pull gossip baseline (wired
// in purely through internal/proto) against the frugal protocol.
func BenchmarkGossipVsFrugal(b *testing.B) {
	var frugal, gossip float64
	for i := 0; i < b.N; i++ {
		frugal += runReliability(b, rwpScenario(b, 10, 10, 0.8, int64(i)+1), -1, 60*time.Second)
		sc := rwpScenario(b, 10, 10, 0.8, int64(i)+1)
		sc.Protocol = netsim.ProtocolSpec{Name: "gossip-pushpull"}
		gossip += runReliability(b, sc, -1, 60*time.Second)
	}
	b.ReportMetric(frugal/float64(b.N), "frugal-rel")
	b.ReportMetric(gossip/float64(b.N), "gossip-rel")
}

type nullTransport struct{}

func (nullTransport) Broadcast(event.Message) {}

// BenchmarkProtocolDispatch guards the protocol registry's overhead:
// the name lookup happens once per node at build time — never per
// message — so registry-build must track direct construction and the
// per-message path through the Disseminator interface must stay flat.
// Compare registry-build vs direct-build ns/op; handle-message is the
// hot path the old buildProtocol switch also served through an
// identical interface value.
func BenchmarkProtocolDispatch(b *testing.B) {
	newEnv := func(eng *sim.Engine) proto.Env {
		return proto.Env{
			ID:        1,
			Sched:     proto.EngineScheduler{Eng: eng},
			Transport: nullTransport{},
			Rand:      rand.New(rand.NewSource(1)),
		}
	}
	b.Run("registry-build", func(b *testing.B) {
		env := newEnv(sim.New(1))
		for i := 0; i < b.N; i++ {
			if _, err := proto.Build("frugal", nil, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-build", func(b *testing.B) {
		env := newEnv(sim.New(1))
		for i := 0; i < b.N; i++ {
			if _, err := core.New(core.Config{ID: env.ID, Rand: env.Rand}, env.Sched, env.Transport); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("handle-message", func(b *testing.B) {
		env := newEnv(sim.New(1))
		d, err := proto.Build("frugal", nil, env)
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Subscribe(topic.MustParse(".t")); err != nil {
			b.Fatal(err)
		}
		hb := event.Heartbeat{
			From:          2,
			Subscriptions: []topic.Topic{topic.MustParse(".t")},
			Speed:         10,
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := d.HandleMessage(hb); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWorkloadGen is the CI smoke for the workload registry: one
// million lazily generated publications pulled per iteration from the
// flash-crowd generator (the stadium scenario's arrival process, scaled
// up), with a Zipf topic spread. It pins generation overhead off the
// simulation hot path — the walk is O(1) memory, so allocs/op must stay
// flat no matter how many ops stream through (see also
// TestGenerationFlatMemory in internal/workload).
func BenchmarkWorkloadGen(b *testing.B) {
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		env := workload.Env{
			Nodes:      1000,
			Rand:       rand.New(rand.NewSource(int64(i) + 1)),
			Measure:    1000 * time.Second,
			EventTopic: topic.MustParse(".app.news"),
		}
		gen, err := workload.Build("flash-crowd", workload.FlashCrowdParams{
			BaseRate: 800,
			PeakRate: 2000,
			Validity: 60 * time.Second,
			Topics:   workload.TopicModel{Spread: 16, ZipfS: 1.5},
		}, env)
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for {
			op, ok := gen.Next()
			if !ok {
				break
			}
			if op.Kind != workload.Publish {
				b.Fatal("flash-crowd emitted a non-publish op")
			}
			total++
		}
		if total < 900_000 {
			b.Fatalf("generated only %d publications, want ~1e6", total)
		}
	}
	b.ReportMetric(float64(total), "pubs/iter")
}

// BenchmarkExtShadowing measures the headline point under log-normal
// shadowing calibrated to the same nominal radius.
func BenchmarkExtShadowing(b *testing.B) {
	params := radio.Default80211b()
	sh := radio.Shadowing{
		Params:         params,
		SensitivityDBm: params.ReceivedPowerDBm(339),
		SigmaDB:        6,
		LimitDBm:       -111,
	}
	prune := sh.MaxRange(1e-3)
	var rel float64
	for i := 0; i < b.N; i++ {
		sc := rwpScenario(b, 10, 10, 0.8, int64(i)+1)
		sc.MAC.ReceiveProb = sh.ReceiveProb
		sc.MAC.Range = prune
		rel += runReliability(b, sc, -1, 120*time.Second)
	}
	b.ReportMetric(rel/float64(b.N), "reliability")
}

// BenchmarkAppendMarshal pins the pooled codec's zero-alloc contract:
// marshaling the transport's message mix into a warm buffer must not
// touch the heap (allocs/op is the guarded signal; the CI bench diff
// hard-fails any 0 -> nonzero move).
func BenchmarkAppendMarshal(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	msgs := []event.Message{
		event.Heartbeat{From: 1, Speed: 3, Subscriptions: []topic.Topic{topic.MustParse(".app.news")}},
		event.IDList{From: 1, IDs: []event.ID{event.NewID(rng), event.NewID(rng)}},
		event.Events{
			From:      3,
			Receivers: []event.NodeID{1, 2, 5},
			Events: []event.Event{{
				ID:        event.NewID(rng),
				Topic:     topic.MustParse(".a.b.c"),
				Publisher: 3,
				Payload:   make([]byte, 400),
				Validity:  time.Minute,
				Remaining: 30 * time.Second,
			}},
		},
	}
	buf := make([]byte, 0, 4096)
	var bytesOut int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, m := range msgs {
			buf = event.AppendMarshal(buf[:0], m)
			bytesOut += len(buf)
		}
	}
	b.ReportMetric(float64(bytesOut)/float64(b.N), "wire-B/op")
}

// BenchmarkUDPBroadcast pins the protocol layer's cost of a real-path
// send: marshal into a pooled ring slot and kick the writer. The writer
// is parked on a distant flush tick so the measurement isolates the
// enqueue path the protocol pays — which must stay allocation-free
// (0 allocs/op is the guarded signal in the CI bench diff).
func BenchmarkUDPBroadcast(b *testing.B) {
	const perOp = 512 // one full ring per iteration smooths -benchtime=1x noise
	u, err := transport.NewUDP(transport.UDPConfig{
		Listen:        "127.0.0.1:0",
		Handler:       func(event.Message) {},
		SendQueue:     perOp,
		FlushInterval: time.Hour,
	})
	if err != nil {
		b.Skipf("UDP unavailable: %v", err)
	}
	defer u.Close()
	var msg event.Message = event.Heartbeat{
		From:          7,
		Speed:         1.5,
		Subscriptions: []topic.Topic{topic.MustParse(".app.news")},
	}
	// Warm every slot buffer once around the ring.
	for i := 0; i < perOp; i++ {
		u.Broadcast(msg)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < perOp; j++ {
			u.Broadcast(msg)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*perOp)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkUDPBroadcastMmsg measures the whole outbound fast path end
// to end: enqueue into the pooled ring, writer swap-drain, and the
// per-flush batch leaving through one sendmmsg per chunk on Linux (the
// portable WriteTo loop elsewhere — same benchmark, so the diff between
// platforms IS the syscall batching). Two never-read sink sockets stand
// in for the peer group; each iteration broadcasts a full ring and
// waits until every datagram has hit the wire, so ns/op prices the
// syscalls, not just the enqueue. The datagrams-per-syscall coalescing
// factor is reported when the batched path engaged.
func BenchmarkUDPBroadcastMmsg(b *testing.B) {
	const perOp = 256
	var sinks []string
	for i := 0; i < 2; i++ {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			b.Skipf("UDP unavailable: %v", err)
		}
		defer c.Close()
		sinks = append(sinks, c.LocalAddr().String())
	}
	u, err := transport.NewUDP(transport.UDPConfig{
		Listen:    "127.0.0.1:0",
		Peers:     sinks,
		Handler:   func(event.Message) {},
		SendQueue: perOp,
	})
	if err != nil {
		b.Skipf("UDP unavailable: %v", err)
	}
	defer u.Close()
	var msg event.Message = event.Heartbeat{
		From:          7,
		Speed:         1.5,
		Subscriptions: []topic.Topic{topic.MustParse(".app.news")},
	}
	drainTo := func(target uint64) {
		for u.Stats().DatagramsSent < target {
			runtime.Gosched()
		}
	}
	// Warm the ring slots and the lazily built mmsg writer state.
	for i := 0; i < perOp; i++ {
		u.Broadcast(msg)
	}
	warm := uint64(perOp * len(sinks))
	drainTo(warm)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < perOp; j++ {
			u.Broadcast(msg)
		}
		drainTo(warm + uint64((i+1)*perOp*len(sinks)))
	}
	b.StopTimer()
	st := u.Stats()
	if st.Dropped != 0 {
		b.Fatalf("send ring overflowed (%d drops): iteration did not drain", st.Dropped)
	}
	b.ReportMetric(float64(b.N*perOp)/b.Elapsed().Seconds(), "msgs/s")
	if st.MmsgSends > 0 {
		b.ReportMetric(float64(st.DatagramsSent)/float64(st.MmsgSends), "datagrams/syscall")
	}
}

// BenchmarkObsRegistry pins the observability hot path: incrementing a
// registered counter (what transport and pubsub pay per operation when
// scraped) must stay a bare atomic — ~0 allocs/op is the guarded signal
// in the CI bench diff. Registration cost is paid once outside the
// timed loop, exactly as RegisterMetrics does at wiring time.
func BenchmarkObsRegistry(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("repro_bench_ops_total", "benchmark counter", "node", "1")
	g := reg.Gauge("repro_bench_depth", "benchmark gauge", "node", "1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(int64(i))
	}
	b.StopTimer()
	if c.Value() != uint64(b.N) {
		b.Fatalf("counter = %d, want %d", c.Value(), b.N)
	}
}
