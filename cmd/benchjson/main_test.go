package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngineThroughput-8 	 5000000	       211 ns/op
BenchmarkWorkloadGen 	       1	  94450042 ns/op	    999810 pubs/iter	    7952 B/op	      80 allocs/op
BenchmarkGossipVsFrugal-8   	       1	 180039655 ns/op	         0.7531 frugal-rel	         0.6145 gossip-rel
PASS
ok  	repro	2.113s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(results), results)
	}
	gen, ok := results["BenchmarkWorkloadGen"]
	if !ok {
		t.Fatalf("BenchmarkWorkloadGen missing: %+v", results)
	}
	if gen.Iterations != 1 || gen.NsPerOp != 94450042 || gen.AllocsPerOp != 80 || gen.BytesPerOp != 7952 {
		t.Fatalf("bad standard units: %+v", gen)
	}
	if gen.Metrics["pubs/iter"] != 999810 {
		t.Fatalf("custom metric lost: %+v", gen.Metrics)
	}
	eng := results["BenchmarkEngineThroughput-8"]
	if eng.NsPerOp != 211 || eng.Iterations != 5000000 {
		t.Fatalf("bad engine result: %+v", eng)
	}
	gossip := results["BenchmarkGossipVsFrugal-8"]
	if gossip.Metrics["frugal-rel"] != 0.7531 || gossip.Metrics["gossip-rel"] != 0.6145 {
		t.Fatalf("ReportMetric values lost: %+v", gossip.Metrics)
	}
}

func TestRenderRoundTrips(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	buf, err := render(results)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]Result
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("rendered JSON does not parse: %v\n%s", err, buf)
	}
	if len(back) != len(results) {
		t.Fatalf("round trip lost benchmarks: %d -> %d", len(results), len(back))
	}
	if back["BenchmarkWorkloadGen"].AllocsPerOp != 80 {
		t.Fatalf("allocs_per_op lost in round trip: %+v", back["BenchmarkWorkloadGen"])
	}
}

func TestParseIgnoresProse(t *testing.T) {
	results, err := parse(strings.NewReader("no benchmarks here\nBenchmark prose line without count\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d benchmarks from prose", len(results))
	}
}

func TestDiffResultsThreshold(t *testing.T) {
	old := map[string]Result{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 10},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 0},
	}
	// Within threshold: +20% ns, equal allocs.
	regs, err := diffResults(old, map[string]Result{
		"BenchmarkA": {NsPerOp: 120, AllocsPerOp: 10},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 0},
	}, nil, 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("within-threshold diff flagged: regs=%v err=%v", regs, err)
	}
	// Over threshold on ns/op.
	regs, err = diffResults(old, map[string]Result{
		"BenchmarkA": {NsPerOp: 126, AllocsPerOp: 10},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 0},
	}, nil, 0.25)
	if err != nil || len(regs) != 1 || regs[0].Name != "BenchmarkA" || regs[0].Unit != "ns/op" {
		t.Fatalf("ns regression not flagged: regs=%v err=%v", regs, err)
	}
	// Over threshold on allocs/op.
	regs, err = diffResults(old, map[string]Result{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 13},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 0},
	}, nil, 0.25)
	if err != nil || len(regs) != 1 || regs[0].Unit != "allocs/op" {
		t.Fatalf("alloc regression not flagged: regs=%v err=%v", regs, err)
	}
	// Allocation-flat contract: 0 -> any allocs fails regardless of ratio.
	regs, err = diffResults(old, map[string]Result{
		"BenchmarkA": {NsPerOp: 100, AllocsPerOp: 10},
		"BenchmarkB": {NsPerOp: 100, AllocsPerOp: 1},
	}, nil, 0.25)
	if err != nil || len(regs) != 1 || regs[0].Name != "BenchmarkB" {
		t.Fatalf("flat-alloc break not flagged: regs=%v err=%v", regs, err)
	}
	// Improvements never flag.
	regs, err = diffResults(old, map[string]Result{
		"BenchmarkA": {NsPerOp: 10, AllocsPerOp: 0},
		"BenchmarkB": {NsPerOp: 50, AllocsPerOp: 0},
	}, nil, 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("improvement flagged: regs=%v err=%v", regs, err)
	}
}

func TestDiffResultsNames(t *testing.T) {
	old := map[string]Result{"BenchmarkA": {NsPerOp: 100}, "BenchmarkGone": {NsPerOp: 1}}
	new := map[string]Result{"BenchmarkA": {NsPerOp: 500}, "BenchmarkNew": {NsPerOp: 1}}
	// Unnamed: only the common benchmark is compared (and flagged).
	regs, err := diffResults(old, new, nil, 0.25)
	if err != nil || len(regs) != 1 || regs[0].Name != "BenchmarkA" {
		t.Fatalf("common-set diff wrong: regs=%v err=%v", regs, err)
	}
	// A named benchmark missing on either side is an error, not a skip.
	if _, err := diffResults(old, new, []string{"BenchmarkGone"}, 0.25); err == nil {
		t.Fatal("missing-from-new benchmark accepted")
	}
	if _, err := diffResults(old, new, []string{"BenchmarkNew"}, 0.25); err == nil {
		t.Fatal("missing-from-baseline benchmark accepted")
	}
	// Naming restricts the check: BenchmarkA's regression is ignored
	// when only a clean benchmark is named.
	old["BenchmarkClean"] = Result{NsPerOp: 1}
	new["BenchmarkClean"] = Result{NsPerOp: 1}
	regs, err = diffResults(old, new, []string{"BenchmarkClean"}, 0.25)
	if err != nil || len(regs) != 0 {
		t.Fatalf("named restriction leaked: regs=%v err=%v", regs, err)
	}
}
