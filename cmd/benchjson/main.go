// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file, so CI can archive per-PR benchmark
// numbers (ns/op, allocs/op, bytes/op and any custom ReportMetric
// units) as workflow artifacts and later runs can diff them.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem . | benchjson -out BENCH.json
//	benchjson -in bench.txt -out BENCH.json
//
// Lines that are not benchmark results (headers, PASS/ok, test logs)
// are ignored. A benchmark that ran but produced no metrics is still
// listed with its iteration count.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp mirror the standard units;
	// absent units render as zero. No omitempty: a measured zero (the
	// flat-allocation goal) must stay distinguishable in artifact
	// diffs, not have its key vanish.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds every non-standard unit (custom b.ReportMetric
	// values such as "reliability" or "pubs/iter").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// parse reads `go test -bench` output and returns benchmark name →
// result, preserving every "value unit" pair on each result line.
func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is "BenchmarkName N value unit [value unit]...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. the "Benchmarking..." prose some tools print
		}
		res := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		out[fields[0]] = res
	}
	return out, sc.Err()
}

// render marshals the results with stable key order (encoding/json
// sorts map keys) so artifact diffs across runs are meaningful.
func render(results map[string]Result) ([]byte, error) {
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

func main() {
	in := flag.String("in", "", "benchmark output file (default: stdin)")
	out := flag.String("out", "", "JSON output file (default: stdout)")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	results, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines in input")
		os.Exit(1)
	}
	buf, err := render(results)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
