// Command benchjson converts `go test -bench` output into a
// machine-readable JSON file, so CI can archive per-PR benchmark
// numbers (ns/op, allocs/op, bytes/op and any custom ReportMetric
// units) as workflow artifacts and later runs can diff them.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem . | benchjson -out BENCH.json
//	benchjson -in bench.txt -out BENCH.json
//	benchjson -diff -names BenchmarkWorkloadGen,BenchmarkMetroSweep old.json new.json
//
// Lines that are not benchmark results (headers, PASS/ok, test logs)
// are ignored. A benchmark that ran but produced no metrics is still
// listed with its iteration count.
//
// # Diff mode (-diff)
//
// -diff compares two previously written JSON files and exits non-zero
// when any named benchmark regressed by more than -max-regress
// (default 0.25, i.e. 25%) in ns/op or allocs/op — the CI guardrail
// between per-PR artifacts (BENCH_pr4.json -> BENCH_pr5.json). A
// benchmark whose baseline allocs/op is zero must stay at zero: going
// from allocation-flat to allocating is a regression no ratio can
// express. -names restricts the check to a comma-separated list (every
// named benchmark must exist in both files); without it every
// benchmark present in both files is checked, and benchmarks only
// present on one side are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements.
type Result struct {
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp mirror the standard units;
	// absent units render as zero. No omitempty: a measured zero (the
	// flat-allocation goal) must stay distinguishable in artifact
	// diffs, not have its key vanish.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds every non-standard unit (custom b.ReportMetric
	// values such as "reliability" or "pubs/iter").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// parse reads `go test -bench` output and returns benchmark name →
// result, preserving every "value unit" pair on each result line.
func parse(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// A result line is "BenchmarkName N value unit [value unit]...".
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. the "Benchmarking..." prose some tools print
		}
		res := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s: bad value %q", fields[0], fields[i])
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = val
			case "B/op":
				res.BytesPerOp = val
			case "allocs/op":
				res.AllocsPerOp = val
			default:
				if res.Metrics == nil {
					res.Metrics = make(map[string]float64)
				}
				res.Metrics[unit] = val
			}
		}
		out[fields[0]] = res
	}
	return out, sc.Err()
}

// render marshals the results with stable key order (encoding/json
// sorts map keys) so artifact diffs across runs are meaningful.
func render(results map[string]Result) ([]byte, error) {
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// regression is one over-threshold finding of diffResults.
type regression struct {
	Name   string
	Unit   string
	Old    float64
	New    float64
	Growth float64 // (new-old)/old; +Inf for 0 -> nonzero allocs
}

func (r regression) String() string {
	if math.IsInf(r.Growth, 1) {
		return fmt.Sprintf("%s %s: %.4g -> %.4g (was allocation-flat)", r.Name, r.Unit, r.Old, r.New)
	}
	return fmt.Sprintf("%s %s: %.4g -> %.4g (+%.1f%%)", r.Name, r.Unit, r.Old, r.New, 100*r.Growth)
}

// diffResults compares new against old and returns the regressions
// exceeding maxRegress in ns/op or allocs/op. With names empty, every
// benchmark present in both files is compared; otherwise exactly the
// named ones, which must exist on both sides (a vanished benchmark
// cannot certify anything).
func diffResults(old, new map[string]Result, names []string, maxRegress float64) ([]regression, error) {
	if len(names) == 0 {
		for name := range old {
			if _, ok := new[name]; ok {
				names = append(names, name)
			}
		}
		sort.Strings(names)
	}
	var regs []regression
	for _, name := range names {
		o, ok := old[name]
		if !ok {
			return nil, fmt.Errorf("benchjson: %s missing from the baseline file", name)
		}
		n, ok := new[name]
		if !ok {
			return nil, fmt.Errorf("benchjson: %s missing from the new file", name)
		}
		check := func(unit string, ov, nv float64) {
			switch {
			case ov == 0 && nv > 0 && unit == "allocs/op":
				regs = append(regs, regression{Name: name, Unit: unit, Old: ov, New: nv, Growth: math.Inf(1)})
			case ov > 0 && (nv-ov)/ov > maxRegress:
				regs = append(regs, regression{Name: name, Unit: unit, Old: ov, New: nv, Growth: (nv - ov) / ov})
			}
		}
		check("ns/op", o.NsPerOp, n.NsPerOp)
		check("allocs/op", o.AllocsPerOp, n.AllocsPerOp)
	}
	return regs, nil
}

func loadResults(path string) (map[string]Result, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out map[string]Result
	if err := json.Unmarshal(buf, &out); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return out, nil
}

func runDiff(oldPath, newPath, names string, maxRegress float64) int {
	old, err := loadResults(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	new, err := loadResults(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var nameList []string
	if names != "" {
		nameList = strings.Split(names, ",")
	}
	regs, err := diffResults(old, new, nameList, maxRegress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if len(regs) == 0 {
		fmt.Printf("benchjson: no regression beyond %.0f%% between %s and %s\n",
			100*maxRegress, oldPath, newPath)
		return 0
	}
	for _, r := range regs {
		fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
	}
	return 1
}

func main() {
	in := flag.String("in", "", "benchmark output file (default: stdin)")
	out := flag.String("out", "", "JSON output file (default: stdout)")
	diffMode := flag.Bool("diff", false, "compare two JSON files (args: old.json new.json); exit non-zero on regression")
	names := flag.String("names", "", "comma-separated benchmarks the diff must cover (default: all common)")
	maxRegress := flag.Float64("max-regress", 0.25, "diff failure threshold on ns/op and allocs/op growth")
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: old.json new.json")
			os.Exit(1)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *names, *maxRegress))
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		src = f
	}
	results, err := parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines in input")
		os.Exit(1)
	}
	buf, err := render(results)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
