package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLoadgen compiles the command once into a temp dir; the check and
// usage paths end in os.Exit, so they are pinned end-to-end through the
// real binary rather than in-process.
func buildLoadgen(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "loadgen")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSmallSoakCheckPasses runs a miniature soak end to end in -check
// mode: real sockets, real workload stream, the sim mirror, and the
// assertions — the same shape the CI smoke runs at 50 nodes.
func TestSmallSoakCheckPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs a few wall-clock seconds")
	}
	bin := buildLoadgen(t)
	cmd := exec.Command(bin,
		"-nodes", "8", "-duration", "2s", "-warmup", "500ms",
		"-rate", "10", "-hb", "200ms", "-check", "-band", "0.5")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("soak check failed: %v\n%s", err, out)
	}
	for _, want := range []string{"real:", "sim:", "CHECK OK"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
}

// TestListPrintsTrafficCatalog pins -list to the registered traffic
// generators the -workload flag accepts.
func TestListPrintsTrafficCatalog(t *testing.T) {
	bin := buildLoadgen(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, want := range []string{"poisson", "flash-crowd"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("-list lacks %q:\n%s", want, out)
		}
	}
}

// TestBadWorkloadExits2 pins structural misuse to usage exit 2.
func TestBadWorkloadExits2(t *testing.T) {
	bin := buildLoadgen(t)
	err := exec.Command(bin, "-workload", "no-such-generator").Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("err = %v, want non-zero exit", err)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("bad workload exited %d, want 2", code)
	}
}
