package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildLoadgen compiles the command once into a temp dir; the check and
// usage paths end in os.Exit, so they are pinned end-to-end through the
// real binary rather than in-process.
func buildLoadgen(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "loadgen")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestSmallSoakCheckPasses runs a miniature soak end to end in -check
// mode: real sockets, real workload stream, the sim mirror, and the
// assertions — the same shape the CI smoke runs at 50 nodes. The
// verdict is read from the -json report, the artifact CI consumes.
func TestSmallSoakCheckPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs a few wall-clock seconds")
	}
	bin := buildLoadgen(t)
	repPath := filepath.Join(t.TempDir(), "report.json")
	cmd := exec.Command(bin,
		"-nodes", "8", "-duration", "2s", "-warmup", "500ms",
		"-rate", "10", "-hb", "200ms", "-check", "-band", "0.5",
		"-json", repPath, "-progress", "1s")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("soak check failed: %v\n%s", err, out)
	}
	for _, want := range []string{"real:", "sim:", "CHECK OK", "progress:"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
	var rep struct {
		Published int     `json:"published"`
		Delivered int     `json:"delivered"`
		RealRatio float64 `json:"real_delivery_ratio"`
		Check     *struct {
			Passed bool `json:"passed"`
		} `json:"check"`
	}
	data, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v\n%s", err, data)
	}
	if rep.Published == 0 || rep.Delivered == 0 || rep.RealRatio <= 0 {
		t.Fatalf("report counters empty: %s", data)
	}
	if rep.Check == nil || !rep.Check.Passed {
		t.Fatalf("report check verdict wrong: %s", data)
	}
}

// TestChurnPartialMeshSoak runs the deployment-shaped soak: a partial
// circulant mesh (multi-hop epidemic repair on real sockets), dynamic
// membership (forward seeds + LearnPeers + suspicion eviction), and a
// crash/recover churn wave from the same generator the sim mirror
// executes. The -check gate adds the membership assertions: peers must
// be genuinely learned off the wire, the wave must crash and recover
// nodes, and a downtime longer than the suspicion window must evict.
func TestChurnPartialMeshSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs a few wall-clock seconds")
	}
	bin := buildLoadgen(t)
	repPath := filepath.Join(t.TempDir(), "report.json")
	cmd := exec.Command(bin,
		"-nodes", "10", "-duration", "4s", "-warmup", "500ms",
		"-rate", "10", "-hb", "100ms",
		"-visibility", "0.4", "-membership", "dynamic", "-suspicion", "600ms",
		"-churn", "0.2", "-churn-waves", "1", "-churn-down", "1s",
		"-check", "-band", "0.75", "-json", repPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("churn soak check failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "CHECK OK") {
		t.Fatalf("output lacks CHECK OK:\n%s", out)
	}
	var rep struct {
		Visibility   float64 `json:"visibility"`
		Membership   string  `json:"membership"`
		Crashes      int     `json:"crashes"`
		Recoveries   int     `json:"recoveries"`
		PeersLearned uint64  `json:"peers_learned"`
		PeersEvicted uint64  `json:"peers_evicted"`
		Delivered    int     `json:"delivered"`
		Check        *struct {
			Passed bool `json:"passed"`
		} `json:"check"`
	}
	data, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v\n%s", err, data)
	}
	if rep.Membership != "dynamic" || rep.Visibility != 0.4 {
		t.Fatalf("report does not reflect the topology knobs: %s", data)
	}
	if rep.Crashes == 0 || rep.Recoveries == 0 {
		t.Fatalf("churn wave did not execute (crashes %d, recoveries %d): %s",
			rep.Crashes, rep.Recoveries, data)
	}
	if rep.PeersLearned == 0 || rep.PeersEvicted == 0 || rep.Delivered == 0 {
		t.Fatalf("membership counters empty: %s", data)
	}
	if rep.Check == nil || !rep.Check.Passed {
		t.Fatalf("report check verdict wrong: %s", data)
	}
}

// TestMetricsEndpointServesMesh starts a soak with -metrics-addr, reads
// the bound address off stdout, and scrapes /metrics, /healthz and
// /flight while the mesh is running — the acceptance criterion that a
// live loadgen serves valid Prometheus text with the key series.
func TestMetricsEndpointServesMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs a few wall-clock seconds")
	}
	bin := buildLoadgen(t)
	cmd := exec.Command(bin,
		"-nodes", "4", "-duration", "4s", "-warmup", "300ms",
		"-rate", "10", "-hb", "100ms", "-metrics-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()

	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "metrics: http://") {
			base = "http://" + strings.TrimSuffix(strings.TrimPrefix(line, "metrics: http://"), "/metrics (pprof under /debug/pprof/)")
			break
		}
	}
	if base == "" {
		t.Fatalf("no metrics address line on stdout (scan err %v)", sc.Err())
	}
	get := func(path string) string {
		t.Helper()
		var body []byte
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, err := http.Get(base + path)
			if err == nil {
				body, err = io.ReadAll(resp.Body)
				resp.Body.Close()
				if err == nil && resp.StatusCode == http.StatusOK {
					return string(body)
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("GET %s: %v", path, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	if got := get("/healthz"); !strings.Contains(got, "ok") {
		t.Fatalf("/healthz = %q", got)
	}
	// Give the mesh a beat of traffic so counters are nonzero.
	time.Sleep(time.Second)
	metrics := get("/metrics")
	for _, want := range []string{
		"# TYPE repro_loadgen_published_total counter",
		"repro_loadgen_nodes 4",
		`repro_transport_datagrams_sent_total{node="0"}`,
		`repro_pubsub_heartbeats_sent_total{node="3"}`,
		"# TYPE repro_transport_handler_seconds summary",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}
	if flight := get("/flight?node=0"); flight == "" {
		t.Error("/flight?node=0 returned an empty timeline")
	}
}

// TestCheckFailureIncludesReport pins the diagnosability contract: a
// failed -check exits 1 and lands the full JSON report (and a flight
// dump) on stderr, so CI logs alone explain the failure.
func TestCheckFailureIncludesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("soak needs a few wall-clock seconds")
	}
	bin := buildLoadgen(t)
	repPath := filepath.Join(t.TempDir(), "report.json")
	cmd := exec.Command(bin,
		"-nodes", "4", "-duration", "1s", "-warmup", "300ms",
		"-rate", "10", "-hb", "100ms",
		"-check", "-min-dps", "1e12", "-json", repPath)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("err = %v, want exit 1\n%s", err, out)
	}
	for _, want := range []string{
		"CHECK FAILED", "full report", `"passed": false`, `"failure":`,
		"flight recorder, node 0:",
	} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("failure output lacks %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(repPath)
	if err != nil {
		t.Fatalf("report not written on failure: %v", err)
	}
	if !strings.Contains(string(data), `"passed": false`) {
		t.Fatalf("report file lacks the failed verdict: %s", data)
	}
}

// TestListPrintsTrafficCatalog pins -list to the registered traffic
// generators the -workload flag accepts.
func TestListPrintsTrafficCatalog(t *testing.T) {
	bin := buildLoadgen(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, want := range []string{"poisson", "flash-crowd"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("-list lacks %q:\n%s", want, out)
		}
	}
}

// TestBadWorkloadExits2 pins structural misuse to usage exit 2.
func TestBadWorkloadExits2(t *testing.T) {
	bin := buildLoadgen(t)
	err := exec.Command(bin, "-workload", "no-such-generator").Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("err = %v, want non-zero exit", err)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("bad workload exited %d, want 2", code)
	}
}
