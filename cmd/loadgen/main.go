// Command loadgen soak-tests the real pubsub fast path: it instantiates
// N full protocol nodes on in-process UDP loopback sockets (a complete
// mesh, the LAN-testbed shape of examples/udpmesh), drives them with the
// same registered workload generators the simulator uses, and reports
// what the wire actually did — delivery ratio, protocol messages per
// delivery, datagram throughput, publish-to-delivery latency quantiles —
// next to the prediction netsim.Run makes for the matching scenario.
//
// That side-by-side is the point: the simulator's claims about the
// protocol are validated against real sockets, real goroutines, and the
// real codec under load, with the transport's backpressure counters
// (queue drops, decode errors) surfaced alongside.
//
// The run is observable while it happens: -metrics-addr serves the
// whole mesh's counters as Prometheus text on /metrics (plus
// /metrics.json, /healthz, per-node flight-recorder dumps on
// /flight?node=N, and net/http/pprof), a progress line lands on stderr
// every -progress interval, and -json writes a machine-readable final
// report — the artifact CI asserts against. -check failures print that
// full report plus a flight dump, so a failed soak is diagnosable from
// logs alone.
//
// Examples:
//
//	loadgen -nodes 50 -duration 10s                  # default poisson soak
//	loadgen -nodes 50 -duration 5s -check            # CI smoke: assert vs sim
//	loadgen -metrics-addr 127.0.0.1:0                # scrape /metrics live
//	loadgen -json report.json -check                 # machine-readable verdict
//	loadgen -workload flash-crowd -rate 5 -peak 200  # burst overload
//	loadgen -spread 16 -zipf 1.2                     # Zipf topic popularity
//	loadgen -list                                    # traffic generator catalog
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topic"
	"repro/internal/workload"
	"repro/pubsub"
)

func main() {
	os.Exit(run())
}

// evRec tracks one published event's real-path outcome.
type evRec struct {
	at       time.Time
	eligible int
	got      int
}

// tracker accumulates deliveries across all nodes' OnDeliver callbacks.
type tracker struct {
	mu      sync.Mutex
	events  map[event.ID]*evRec
	latency metrics.LogHist
	late    int // deliveries of events published before tracking started

	// pubs/gots shadow the map totals as atomics so the progress ticker
	// and the metrics registry can read them without taking the lock.
	pubs atomic.Int64
	gots atomic.Int64
}

func (tr *tracker) published(id event.ID, eligible int) {
	tr.mu.Lock()
	tr.events[id] = &evRec{at: time.Now(), eligible: eligible}
	tr.mu.Unlock()
	tr.pubs.Add(1)
}

func (tr *tracker) delivered(ev pubsub.Event) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	rec, ok := tr.events[ev.ID]
	if !ok {
		tr.late++
		return
	}
	rec.got++
	tr.latency.Add(time.Since(rec.at).Seconds())
	tr.gots.Add(1)
}

func run() int {
	var (
		nodes    = flag.Int("nodes", 50, "number of in-process UDP nodes (full loopback mesh)")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		warmup   = flag.Duration("warmup", time.Second, "discovery warm-up before measurement")
		subs     = flag.Float64("subscribers", 1.0, "fraction subscribed to the event topic")
		wkld     = flag.String("workload", "poisson", "traffic generator: poisson | flash-crowd")
		rate     = flag.Float64("rate", 20, "publication rate in events/s (flash-crowd: base rate)")
		peak     = flag.Float64("peak", 100, "flash-crowd peak rate in events/s")
		spread   = flag.Int("spread", 0, "publish across N sibling subtopics (0/1 = the event topic itself)")
		zipf     = flag.Float64("zipf", 0, "Zipf(s) topic popularity skew (0 = uniform; needs -spread > 1)")
		validity = flag.Duration("validity", 60*time.Second, "event validity period")
		seed     = flag.Int64("seed", 1, "workload + sim seed")
		hb       = flag.Duration("hb", 200*time.Millisecond, "heartbeat period (lower = more datagrams/s)")
		sendQ    = flag.Int("send-queue", 0, "transport send ring bound (0 = default)")
		recvQ    = flag.Int("recv-queue", 0, "transport dispatch ring bound (0 = default)")
		flush    = flag.Duration("flush", 0, "transport flush interval (0 = immediate)")
		check    = flag.Bool("check", false,
			"assert the soak: nonzero deliveries, zero decode errors, delivery ratio within -band of the sim prediction (exit 1 on failure)")
		band        = flag.Float64("band", 0.35, "allowed |real - sim| delivery-ratio gap under -check")
		minDPS      = flag.Float64("min-dps", 0, "under -check, minimum sustained datagrams/s (0 = don't assert)")
		list        = flag.Bool("list", false, "list registered traffic generators and exit")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /healthz, /flight and pprof on this address for the run (e.g. 127.0.0.1:0; the bound address is printed)")
		flight      = flag.Int("flight", 256, "per-node flight recorder capacity (0 = off); dump over /flight?node=N or on -check failure")
		jsonOut     = flag.String("json", "", "write the machine-readable final report to this file as JSON")
		progress    = flag.Duration("progress", 5*time.Second, "print a live progress line every interval (0 = off)")
	)
	flag.Parse()
	if *list {
		for _, d := range workload.Workloads() {
			if d.Class == workload.ClassTraffic {
				fmt.Printf("%-14s %s\n", d.Name, d.Description)
			}
		}
		return 0
	}
	if *nodes < 2 {
		fmt.Fprintln(os.Stderr, "loadgen: need at least 2 nodes")
		return 2
	}

	var params workload.Params
	switch *wkld {
	case "poisson":
		params = workload.PoissonParams{
			Rate:     *rate,
			Validity: *validity,
			Topics:   workload.TopicModel{Spread: *spread, ZipfS: *zipf},
		}
	case "flash-crowd":
		params = workload.FlashCrowdParams{
			BaseRate: *rate,
			PeakRate: *peak,
			Validity: *validity,
			Topics:   workload.TopicModel{Spread: *spread, ZipfS: *zipf},
		}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unsupported workload %q (poisson | flash-crowd)\n", *wkld)
		return 2
	}
	if err := workload.CheckParams(*wkld, params); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}

	eventTopic := topic.MustParse(".soak.events")
	decoyTopic := topic.MustParse(".soak.decoy")
	numSubs := int(float64(*nodes)*(*subs) + 0.5)
	if numSubs < 1 {
		numSubs = 1
	}

	tr := &tracker{events: make(map[event.ID]*evRec)}
	tun := pubsub.UDPTuning{SendQueue: *sendQ, RecvQueue: *recvQ, FlushInterval: *flush}

	// Build the mesh: every node binds an ephemeral loopback socket; the
	// roster is exchanged once all addresses are known. Node i's own
	// address in the roster is filtered by the transport.
	mesh := make([]*pubsub.Node, *nodes)
	for i := range mesh {
		id := pubsub.NodeID(i)
		cfg := pubsub.Config{
			ID:           id,
			HBDelay:      *hb,
			HBLowerBound: *hb,
			HBUpperBound: *hb,
			OnDeliver: func(ev pubsub.Event) {
				if ev.Publisher == id {
					return // local self-delivery, excluded like the sim's
				}
				tr.delivered(ev)
			},
		}
		n, err := pubsub.NewUDPNodeTuned(cfg, "127.0.0.1:0", nil, tun)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: node %d: %v\n", i, err)
			return 2
		}
		defer n.Close()
		mesh[i] = n
	}
	for _, a := range mesh {
		for _, b := range mesh {
			if err := a.AddPeer(b.LocalAddr()); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				return 2
			}
		}
	}
	for i, n := range mesh {
		tp := decoyTopic
		if i < numSubs {
			tp = eventTopic
		}
		if err := n.Subscribe(tp); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			return 2
		}
	}

	// Observability: per-node flight recorders, every node's counters in
	// one registry, and an optional HTTP listener for live scrapes and
	// flight dumps. All read-only with respect to the protocol.
	if *flight > 0 {
		for _, n := range mesh {
			n.StartFlightRecorder(*flight)
		}
	}
	reg := obs.NewRegistry()
	reg.CounterFunc("repro_loadgen_published_total",
		"events published by the harness", func() uint64 { return uint64(tr.pubs.Load()) })
	reg.CounterFunc("repro_loadgen_delivered_total",
		"tracked deliveries observed across the mesh", func() uint64 { return uint64(tr.gots.Load()) })
	reg.GaugeFunc("repro_loadgen_nodes",
		"mesh size", func() float64 { return float64(len(mesh)) })
	for _, n := range mesh {
		n.RegisterMetrics(reg)
	}
	if *metricsAddr != "" {
		mux := obs.NewMux(reg)
		mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
			i, err := strconv.Atoi(r.URL.Query().Get("node"))
			if err != nil || i < 0 || i >= len(mesh) {
				http.Error(w, fmt.Sprintf("usage: /flight?node=<0..%d>", len(mesh)-1), http.StatusBadRequest)
				return
			}
			if err := mesh[i].WriteFlight(w); err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
			}
		})
		srv, err := obs.Serve(*metricsAddr, mux)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: metrics: %v\n", err)
			return 2
		}
		defer srv.Close()
		// The bound address line is machine-readable on purpose: tests
		// and scripts bind :0 and scrape whatever port came back.
		fmt.Printf("metrics: http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}

	// The same generator stream the simulator would run.
	rng := rand.New(rand.NewSource(*seed))
	gen, err := workload.Build(*wkld, params, workload.Env{
		Nodes:      *nodes,
		Rand:       rng,
		Warmup:     *warmup,
		Measure:    *duration,
		EventTopic: eventTopic,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}

	fmt.Printf("loadgen: %d nodes (%d subscribers), %s + %s %s workload, hb %s\n",
		*nodes, numSubs, *warmup, *duration, *wkld, *hb)

	start := time.Now()
	end := start.Add(*warmup + *duration)
	stopProgress := func() {}
	if *progress > 0 {
		done := make(chan struct{})
		var once sync.Once
		stopProgress = func() { once.Do(func() { close(done) }) }
		go func() {
			tick := time.NewTicker(*progress)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					var w pubsub.TransportStats
					for _, n := range mesh {
						w = addWire(w, n.TransportStats())
					}
					fmt.Fprintf(os.Stderr, "progress: t=%-6s published %d  delivered %d  datagrams %d  drops send %d recv %d\n",
						time.Since(start).Round(time.Second), tr.pubs.Load(), tr.gots.Load(),
						w.DatagramsSent, w.Dropped, w.RecvDropped)
				}
			}
		}()
	}
	defer stopProgress()
	// Throughput and message counters cover the measurement window only:
	// baselines are snapshotted once warm-up ends.
	time.Sleep(time.Until(start.Add(*warmup)))
	var baseProto pubsub.Stats
	var baseWire pubsub.TransportStats
	for _, n := range mesh {
		baseProto = addStats(baseProto, n.Stats())
		baseWire = addWire(baseWire, n.TransportStats())
	}
	measureStart := time.Now()

	published := 0
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		if op.Kind != workload.Publish {
			continue // traffic generators only; churn is sim-only here
		}
		time.Sleep(time.Until(start.Add(op.At)))
		idx := op.Node
		if idx < 0 {
			idx = rng.Intn(numSubs) // anonymous publish: a random subscriber
		}
		tp := op.Topic
		if tp.IsZero() {
			tp = eventTopic
		}
		eligible := numSubs
		if idx < numSubs {
			eligible-- // the publisher doesn't count toward its own event
		}
		id, err := mesh[idx].Publish(tp, []byte("soak payload"), op.Validity)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: publish: %v\n", err)
			return 2
		}
		tr.published(id, eligible)
		published++
	}
	time.Sleep(time.Until(end))
	// Drain grace: events published near the end are still spreading.
	// Wait until the delivery count stops moving (or a hard cap), so the
	// ratio measures the protocol rather than the harness's patience —
	// race-instrumented or loaded runs legitimately take longer.
	lastGot := -1
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		tr.mu.Lock()
		got := 0
		for _, rec := range tr.events {
			got += rec.got
		}
		tr.mu.Unlock()
		if got == lastGot {
			break
		}
		lastGot = got
		time.Sleep(300 * time.Millisecond)
	}

	var proto pubsub.Stats
	var wire pubsub.TransportStats
	for _, n := range mesh {
		proto = addStats(proto, n.Stats())
		wire = addWire(wire, n.TransportStats())
	}
	proto = subStats(proto, baseProto)
	wire = subWire(wire, baseWire)
	elapsed := time.Since(measureStart).Seconds()

	tr.mu.Lock()
	var gotSum, eligSum int
	for _, rec := range tr.events {
		gotSum += rec.got
		eligSum += rec.eligible
	}
	realRatio := 0.0
	if eligSum > 0 {
		realRatio = float64(gotSum) / float64(eligSum)
	}
	lat := tr.latency
	tr.mu.Unlock()

	protoMsgs := proto.HeartbeatsSent + proto.IDListsSent + proto.EventMsgsSent
	msgsPerDelivery := math.Inf(1)
	if gotSum > 0 {
		msgsPerDelivery = float64(protoMsgs) / float64(gotSum)
	}
	dps := float64(wire.DatagramsSent) / elapsed

	fmt.Printf("real:  published %d  delivered %d/%d (ratio %.3f)\n", published, gotSum, eligSum, realRatio)
	fmt.Printf("real:  proto msgs %d (%.1f per delivery)  datagrams %.0f/s  batches %d\n",
		protoMsgs, msgsPerDelivery, dps, wire.Batches)
	fmt.Printf("real:  latency ms p50 %.1f  p90 %.1f  p99 %.1f  (n=%d)\n",
		lat.Quantile(0.50)*1e3, lat.Quantile(0.90)*1e3, lat.Quantile(0.99)*1e3, lat.N())
	fmt.Printf("real:  drops send %d recv %d  decode errs %d  send errs %d\n",
		wire.Dropped, wire.RecvDropped, wire.DecodeErrors, wire.SendErrors)

	// The matching simulation: same roster, same workload stream shape,
	// same heartbeat tuning, full radio connectivity standing in for the
	// loopback mesh.
	simRes, err := netsim.Run(netsim.Scenario{
		Name:  "loadgen-mirror",
		Nodes: *nodes,
		Seed:  *seed,
		Protocol: netsim.FrugalSpec(netsim.CoreTuning{
			HBDelay: *hb, HBLowerBound: *hb, HBUpperBound: *hb,
		}),
		Mobility:           netsim.MobilitySpec{Kind: netsim.StaticNodes, Area: geo.NewRect(200, 200)},
		MAC:                mac.DefaultConfig(339), // diag(200,200) < 339 m: everyone hears everyone
		EventTopic:         eventTopic,
		DecoyTopic:         decoyTopic,
		SubscriberFraction: *subs,
		Workload:           netsim.WorkloadSpec{Name: *wkld, Params: params},
		Warmup:             *warmup,
		Measure:            *duration,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: sim mirror: %v\n", err)
		return 2
	}
	simRatio := simRes.Reliability()
	fmt.Printf("sim:   delivery ratio %.3f  events/process %.1f  latency ms p50 %.1f p99 %.1f\n",
		simRatio, simRes.EventsSentPerProcess(),
		simRes.Latency.Quantile(0.50)*1e3, simRes.Latency.Quantile(0.99)*1e3)
	fmt.Printf("diff:  |real - sim| delivery ratio = %.3f\n", math.Abs(realRatio-simRatio))
	stopProgress()

	rep := report{
		Nodes:           *nodes,
		Subscribers:     numSubs,
		Workload:        *wkld,
		WarmupSeconds:   warmup.Seconds(),
		MeasureSeconds:  duration.Seconds(),
		Published:       published,
		Delivered:       gotSum,
		Eligible:        eligSum,
		RealRatio:       realRatio,
		SimRatio:        simRatio,
		RatioGap:        math.Abs(realRatio - simRatio),
		ProtoMsgs:       protoMsgs,
		DatagramsPerSec: dps,
		Batches:         wire.Batches,
		LatencyMsP50:    lat.Quantile(0.50) * 1e3,
		LatencyMsP90:    lat.Quantile(0.90) * 1e3,
		LatencyMsP99:    lat.Quantile(0.99) * 1e3,
		SendDrops:       wire.Dropped,
		RecvDrops:       wire.RecvDropped,
		DecodeErrors:    wire.DecodeErrors,
		SendErrors:      wire.SendErrors,
	}
	var checkFailure string
	if *check {
		switch gap := rep.RatioGap; {
		case published == 0 || gotSum == 0:
			checkFailure = fmt.Sprintf("no deliveries (published %d, delivered %d)", published, gotSum)
		case wire.DecodeErrors != 0:
			checkFailure = fmt.Sprintf("%d decode errors on the wire", wire.DecodeErrors)
		case gap > *band:
			checkFailure = fmt.Sprintf("delivery ratio %.3f vs sim %.3f: gap %.3f > band %.3f", realRatio, simRatio, gap, *band)
		case *minDPS > 0 && dps < *minDPS:
			checkFailure = fmt.Sprintf("throughput %.0f datagrams/s < required %.0f", dps, *minDPS)
		}
		rep.Check = &checkReport{Passed: checkFailure == "", Failure: checkFailure}
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: report: %v\n", err)
		return 2
	}
	blob = append(blob, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: report: %v\n", err)
			return 2
		}
	}
	if *check && checkFailure != "" {
		// Failures must be diagnosable from CI logs alone: the message,
		// the full report, and a recent-history flight dump all land on
		// stderr (plus the report file when -json is set).
		fmt.Fprintf(os.Stderr, "loadgen: CHECK FAILED: %s\n", checkFailure)
		if *jsonOut != "" {
			fmt.Fprintf(os.Stderr, "loadgen: full report (also at %s):\n%s", *jsonOut, blob)
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: full report:\n%s", blob)
		}
		if *flight > 0 {
			fmt.Fprintln(os.Stderr, "loadgen: flight recorder, node 0:")
			_ = mesh[0].WriteFlight(os.Stderr)
		}
		return 1
	}
	if *check {
		fmt.Println("loadgen: CHECK OK")
	}
	return 0
}

// report is the -json machine-readable run summary; the CI soak asserts
// against it instead of scraping the human-oriented stdout lines.
type report struct {
	Nodes           int          `json:"nodes"`
	Subscribers     int          `json:"subscribers"`
	Workload        string       `json:"workload"`
	WarmupSeconds   float64      `json:"warmup_seconds"`
	MeasureSeconds  float64      `json:"measure_seconds"`
	Published       int          `json:"published"`
	Delivered       int          `json:"delivered"`
	Eligible        int          `json:"eligible"`
	RealRatio       float64      `json:"real_delivery_ratio"`
	SimRatio        float64      `json:"sim_delivery_ratio"`
	RatioGap        float64      `json:"ratio_gap"`
	ProtoMsgs       uint64       `json:"proto_msgs"`
	DatagramsPerSec float64      `json:"datagrams_per_second"`
	Batches         uint64       `json:"batches"`
	LatencyMsP50    float64      `json:"latency_ms_p50"`
	LatencyMsP90    float64      `json:"latency_ms_p90"`
	LatencyMsP99    float64      `json:"latency_ms_p99"`
	SendDrops       uint64       `json:"send_drops"`
	RecvDrops       uint64       `json:"recv_drops"`
	DecodeErrors    uint64       `json:"decode_errors"`
	SendErrors      uint64       `json:"send_errors"`
	Check           *checkReport `json:"check,omitempty"`
}

// checkReport records the -check verdict inside the JSON report.
type checkReport struct {
	Passed  bool   `json:"passed"`
	Failure string `json:"failure,omitempty"`
}

func addStats(a, b pubsub.Stats) pubsub.Stats {
	a.HeartbeatsSent += b.HeartbeatsSent
	a.IDListsSent += b.IDListsSent
	a.EventMsgsSent += b.EventMsgsSent
	a.EventsSent += b.EventsSent
	a.EventsReceived += b.EventsReceived
	a.Delivered += b.Delivered
	a.Duplicates += b.Duplicates
	a.Parasites += b.Parasites
	a.Published += b.Published
	return a
}

func subStats(a, b pubsub.Stats) pubsub.Stats {
	a.HeartbeatsSent -= b.HeartbeatsSent
	a.IDListsSent -= b.IDListsSent
	a.EventMsgsSent -= b.EventMsgsSent
	a.EventsSent -= b.EventsSent
	a.EventsReceived -= b.EventsReceived
	a.Delivered -= b.Delivered
	a.Duplicates -= b.Duplicates
	a.Parasites -= b.Parasites
	a.Published -= b.Published
	return a
}

func addWire(a, b pubsub.TransportStats) pubsub.TransportStats {
	a.DatagramsSent += b.DatagramsSent
	a.DatagramsReceived += b.DatagramsReceived
	a.DecodeErrors += b.DecodeErrors
	a.SendErrors += b.SendErrors
	a.Dropped += b.Dropped
	a.RecvDropped += b.RecvDropped
	a.Batches += b.Batches
	return a
}

func subWire(a, b pubsub.TransportStats) pubsub.TransportStats {
	a.DatagramsSent -= b.DatagramsSent
	a.DatagramsReceived -= b.DatagramsReceived
	a.DecodeErrors -= b.DecodeErrors
	a.SendErrors -= b.SendErrors
	a.Dropped -= b.Dropped
	a.RecvDropped -= b.RecvDropped
	a.Batches -= b.Batches
	return a
}
