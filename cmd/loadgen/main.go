// Command loadgen soak-tests the real pubsub fast path: it instantiates
// N full protocol nodes on in-process UDP loopback sockets, drives them
// with the same registered workload generators the simulator uses, and
// reports what the wire actually did — delivery ratio, protocol messages
// per delivery, datagram throughput, publish-to-delivery latency
// quantiles — next to the prediction netsim.Run makes for the matching
// scenario.
//
// That side-by-side is the point: the simulator's claims about the
// protocol are validated against real sockets, real goroutines, and the
// real codec under load, with the transport's backpressure counters
// (queue drops, decode errors) surfaced alongside.
//
// The mesh shape is configurable. -visibility 1 (default) builds the
// full mesh of earlier revisions; below 1 it builds a circulant partial
// mesh — node i sees only its k nearest ring neighbors on each side,
// k ~ visibility*(N-1)/2 — so events must cross multiple real-socket
// hops and the epidemic repair actually runs on the wire. -membership
// dynamic switches the roster from static wiring to the deployment
// story: nodes seed only their forward ring arcs, learn the reverse
// arcs from observed datagram sources (LearnPeers), and evict silent
// peers after -suspicion. -churn adds crash/recover waves from the
// registered churn-nodes generator — the same op stream, executed on
// real nodes here and by netsim.Run in the mirror: a crashed node's
// sockets close mid-run, a recovered one rebinds the same address with
// empty state and resubscribes.
//
// The run is observable while it happens: -metrics-addr serves the
// whole mesh's counters as Prometheus text on /metrics (plus
// /metrics.json, /healthz, per-node flight-recorder dumps on
// /flight?node=N, and net/http/pprof), a progress line lands on stderr
// every -progress interval, and -json writes a machine-readable final
// report — the artifact CI asserts against. -check failures print that
// full report plus a flight dump, so a failed soak is diagnosable from
// logs alone.
//
// Examples:
//
//	loadgen -nodes 50 -duration 10s                  # default poisson soak
//	loadgen -nodes 50 -duration 5s -check            # CI smoke: assert vs sim
//	loadgen -visibility 0.3                          # partial mesh: multi-hop epidemic
//	loadgen -membership dynamic -suspicion 2s        # seed-based join + failure detection
//	loadgen -churn 0.2 -churn-down 3s                # crash/recover waves
//	loadgen -metrics-addr 127.0.0.1:0                # scrape /metrics live
//	loadgen -json report.json -check                 # machine-readable verdict
//	loadgen -workload flash-crowd -rate 5 -peak 200  # burst overload
//	loadgen -list                                    # traffic generator catalog
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/event"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/topic"
	"repro/internal/workload"
	"repro/pubsub"
)

func main() {
	os.Exit(run())
}

// evRec tracks one published event's real-path outcome. seen dedupes
// per delivering node: a node that crashes and recovers with empty
// state legitimately re-delivers old events, but the ratio counts each
// (event, node) pair once.
type evRec struct {
	at       time.Time
	eligible int
	got      int
	seen     map[pubsub.NodeID]bool
}

// tracker accumulates deliveries across all nodes' OnDeliver callbacks.
type tracker struct {
	mu      sync.Mutex
	events  map[event.ID]*evRec
	latency metrics.LogHist
	late    int // deliveries of events published before tracking started

	// pubs/gots shadow the map totals as atomics so the progress ticker
	// and the metrics registry can read them without taking the lock.
	pubs atomic.Int64
	gots atomic.Int64
}

func (tr *tracker) published(id event.ID, eligible int) {
	tr.mu.Lock()
	tr.events[id] = &evRec{at: time.Now(), eligible: eligible, seen: make(map[pubsub.NodeID]bool)}
	tr.mu.Unlock()
	tr.pubs.Add(1)
}

func (tr *tracker) delivered(ev pubsub.Event, at pubsub.NodeID) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	rec, ok := tr.events[ev.ID]
	if !ok {
		tr.late++
		return
	}
	if rec.seen[at] {
		return // re-delivery by a churn-recovered node
	}
	rec.seen[at] = true
	rec.got++
	tr.latency.Add(time.Since(rec.at).Seconds())
	tr.gots.Add(1)
}

// meshCfg is everything needed to (re)build a node: the harness churn
// executor recreates crashed nodes with the same identity and address.
type meshCfg struct {
	hb        time.Duration
	tun       pubsub.UDPTuning
	dynamic   bool
	flight    int
	subTopics []topic.Topic // per-node subscription (event or decoy topic)
	tr        *tracker
}

// mesh owns the node set and its topology. The workload loop mutates it
// (crash/recover); the progress ticker, metrics scrapes and final sweep
// read it concurrently under mu. nodes[i] == nil means node i is down.
type mesh struct {
	cfg   meshCfg
	mu    sync.Mutex
	nodes []*pubsub.Node
	addrs []string // stable concrete listen addresses, fixed at first bind
	// visible[i] is i's undirected circulant neighborhood; forward[i]
	// the half used as seeds under dynamic membership (the other half
	// is learned from datagram sources).
	visible [][]int
	forward [][]int

	crashes    int
	recoveries int
	// Stats of closed node instances: a crash must not lose its
	// counters, exactly like the sim's prevStats accumulation.
	retiredProto pubsub.Stats
	retiredWire  pubsub.TransportStats
}

// circulant computes the ring-neighbor topology: every node sees the k
// nearest nodes on each side, k ~ visibility*(N-1)/2 (at least 1, full
// mesh at visibility 1). The forward arcs alone reach every edge, so
// seeding only those under LearnPeers converges to the same undirected
// graph — with half the roster genuinely learned off the wire.
func circulant(n int, visibility float64) (visible, forward [][]int) {
	k := int(math.Ceil(visibility*float64(n-1)/2 - 1e-9))
	if k < 1 {
		k = 1
	}
	visible = make([][]int, n)
	forward = make([][]int, n)
	for i := 0; i < n; i++ {
		seen := map[int]bool{i: true}
		for d := 1; d <= k; d++ {
			fwd := (i + d) % n
			if !seen[fwd] {
				seen[fwd] = true
				forward[i] = append(forward[i], fwd)
				visible[i] = append(visible[i], fwd)
			}
			back := (i - d + n) % n
			if !seen[back] {
				seen[back] = true
				visible[i] = append(visible[i], back)
			}
		}
	}
	return visible, forward
}

// buildNode creates (or recreates) node i. For the first build addr is
// "127.0.0.1:0"; recoveries rebind the node's original concrete address
// so existing rosters stay valid.
func (m *mesh) buildNode(i int, addr string, peers []string) (*pubsub.Node, error) {
	id := pubsub.NodeID(i)
	cfg := pubsub.Config{
		ID:           id,
		HBDelay:      m.cfg.hb,
		HBLowerBound: m.cfg.hb,
		HBUpperBound: m.cfg.hb,
		OnDeliver: func(ev pubsub.Event) {
			if ev.Publisher == id {
				return // local self-delivery, excluded like the sim's
			}
			m.cfg.tr.delivered(ev, id)
		},
	}
	n, err := pubsub.NewUDPNodeTuned(cfg, addr, peers, m.cfg.tun)
	if err != nil {
		return nil, err
	}
	if err := n.Subscribe(m.cfg.subTopics[i]); err != nil {
		n.Close()
		return nil, err
	}
	if m.cfg.flight > 0 {
		n.StartFlightRecorder(m.cfg.flight)
	}
	return n, nil
}

// peersFor returns the roster node i is (re)wired with: the full
// visible set under static membership, only the forward seeds under
// dynamic (the rest is learned).
func (m *mesh) peersFor(i int) []string {
	idx := m.visible[i]
	if m.cfg.dynamic {
		idx = m.forward[i]
	}
	out := make([]string, len(idx))
	for j, p := range idx {
		out[j] = m.addrs[p]
	}
	return out
}

// node returns node i or nil when it is down.
func (m *mesh) node(i int) *pubsub.Node {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.nodes) {
		return nil
	}
	return m.nodes[i]
}

// crash closes node i mid-run, preserving its counters — the sim's
// runner.crash on real sockets. No-op when already down.
func (m *mesh) crash(i int) {
	m.mu.Lock()
	n := m.nodes[i]
	if n == nil {
		m.mu.Unlock()
		return
	}
	m.nodes[i] = nil
	m.retiredProto = addStats(m.retiredProto, n.Stats())
	m.retiredWire = addWire(m.retiredWire, n.TransportStats())
	m.crashes++
	m.mu.Unlock()
	n.Close()
}

// recover rebuilds node i with empty protocol state on its original
// address and resubscribes it — the sim's runner.recover. No-op when
// the node is up; a failed rebind (address stolen meanwhile) leaves the
// node down and is reported, not fatal, matching a deployment where a
// host simply fails to come back.
func (m *mesh) recover(i int) {
	if m.node(i) != nil {
		return
	}
	n, err := m.buildNode(i, m.addrs[i], m.peersFor(i))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: recover node %d: %v\n", i, err)
		return
	}
	m.mu.Lock()
	m.nodes[i] = n
	m.recoveries++
	m.mu.Unlock()
}

// totals sums protocol and wire counters across live nodes plus the
// retired accumulator, so crashed instances keep counting.
func (m *mesh) totals() (pubsub.Stats, pubsub.TransportStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, w := m.retiredProto, m.retiredWire
	for _, n := range m.nodes {
		if n != nil {
			p = addStats(p, n.Stats())
			w = addWire(w, n.TransportStats())
		}
	}
	return p, w
}

func (m *mesh) churnCounts() (crashes, recoveries int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashes, m.recoveries
}

func (m *mesh) closeAll() {
	m.mu.Lock()
	nodes := append([]*pubsub.Node(nil), m.nodes...)
	m.mu.Unlock()
	for _, n := range nodes {
		if n != nil {
			n.Close()
		}
	}
}

func run() int {
	var (
		nodes    = flag.Int("nodes", 50, "number of in-process UDP nodes")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		warmup   = flag.Duration("warmup", time.Second, "discovery warm-up before measurement")
		subs     = flag.Float64("subscribers", 1.0, "fraction subscribed to the event topic")
		wkld     = flag.String("workload", "poisson", "traffic generator: poisson | flash-crowd")
		rate     = flag.Float64("rate", 20, "publication rate in events/s (flash-crowd: base rate)")
		peak     = flag.Float64("peak", 100, "flash-crowd peak rate in events/s")
		spread   = flag.Int("spread", 0, "publish across N sibling subtopics (0/1 = the event topic itself)")
		zipf     = flag.Float64("zipf", 0, "Zipf(s) topic popularity skew (0 = uniform; needs -spread > 1)")
		validity = flag.Duration("validity", 60*time.Second, "event validity period")
		seed     = flag.Int64("seed", 1, "workload + sim seed")
		hb       = flag.Duration("hb", 200*time.Millisecond, "heartbeat period (lower = more datagrams/s)")
		sendQ    = flag.Int("send-queue", 0, "transport send ring bound (0 = default)")
		recvQ    = flag.Int("recv-queue", 0, "transport dispatch ring bound (0 = default)")
		flush    = flag.Duration("flush", 0, "transport flush interval (0 = immediate)")
		vis      = flag.Float64("visibility", 1.0,
			"fraction of the mesh each node sees (circulant ring topology; 1 = full mesh, lower = multi-hop epidemic repair)")
		membership = flag.String("membership", "static",
			"roster mode: static (full visible roster wired up front) | dynamic (forward seeds + LearnPeers + suspicion eviction)")
		suspicion = flag.Duration("suspicion", 2*time.Second,
			"dynamic membership: evict peers silent for this long (several heartbeat periods)")
		churn = flag.Float64("churn", 0,
			"fraction of the roster crashed per churn wave (0 = no churn; uses the churn-nodes generator)")
		churnWaves = flag.Int("churn-waves", 2, "number of churn waves across the measurement window")
		churnDown  = flag.Duration("churn-down", 5*time.Second,
			"downtime before a crashed node recovers with empty state (negative = never)")
		check = flag.Bool("check", false,
			"assert the soak: nonzero deliveries, zero decode errors, delivery ratio within -band of the sim prediction (exit 1 on failure)")
		band        = flag.Float64("band", 0.35, "allowed |real - sim| delivery-ratio gap under -check")
		minDPS      = flag.Float64("min-dps", 0, "under -check, minimum sustained datagrams/s (0 = don't assert)")
		list        = flag.Bool("list", false, "list registered traffic generators and exit")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /healthz, /flight and pprof on this address for the run (e.g. 127.0.0.1:0; the bound address is printed)")
		flight      = flag.Int("flight", 256, "per-node flight recorder capacity (0 = off); dump over /flight?node=N or on -check failure")
		jsonOut     = flag.String("json", "", "write the machine-readable final report to this file as JSON")
		progress    = flag.Duration("progress", 5*time.Second, "print a live progress line every interval (0 = off)")
	)
	flag.Parse()
	if *list {
		for _, d := range workload.Workloads() {
			if d.Class == workload.ClassTraffic {
				fmt.Printf("%-14s %s\n", d.Name, d.Description)
			}
		}
		return 0
	}
	if *nodes < 2 {
		fmt.Fprintln(os.Stderr, "loadgen: need at least 2 nodes")
		return 2
	}
	if *vis <= 0 || *vis > 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -visibility must be in (0,1]")
		return 2
	}
	dynamic := false
	switch *membership {
	case "static":
	case "dynamic":
		dynamic = true
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unsupported membership %q (static | dynamic)\n", *membership)
		return 2
	}
	if *churn < 0 || *churn > 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -churn must be in [0,1]")
		return 2
	}

	var params workload.Params
	switch *wkld {
	case "poisson":
		params = workload.PoissonParams{
			Rate:     *rate,
			Validity: *validity,
			Topics:   workload.TopicModel{Spread: *spread, ZipfS: *zipf},
		}
	case "flash-crowd":
		params = workload.FlashCrowdParams{
			BaseRate: *rate,
			PeakRate: *peak,
			Validity: *validity,
			Topics:   workload.TopicModel{Spread: *spread, ZipfS: *zipf},
		}
	default:
		fmt.Fprintf(os.Stderr, "loadgen: unsupported workload %q (poisson | flash-crowd)\n", *wkld)
		return 2
	}
	// The op stream spec — one description, two executors: the real mesh
	// below and the netsim mirror. With churn the traffic generator is
	// mixed with crash/recover waves; the stagger scales with the window
	// so short CI runs still fit their waves.
	spec := workload.Spec{Name: *wkld, Params: params}
	if *churn > 0 {
		spec = workload.Spec{Name: "mix", Params: workload.MixParams{Parts: []workload.Spec{
			spec,
			{Name: "churn-nodes", Params: workload.NodeChurnParams{
				Waves:    *churnWaves,
				Fraction: *churn,
				Stagger:  *duration / 10,
				Downtime: *churnDown,
			}},
		}}}
	}
	if err := workload.CheckParams(spec.Name, spec.Params); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}

	eventTopic := topic.MustParse(".soak.events")
	decoyTopic := topic.MustParse(".soak.decoy")
	numSubs := int(float64(*nodes)*(*subs) + 0.5)
	if numSubs < 1 {
		numSubs = 1
	}

	tr := &tracker{events: make(map[event.ID]*evRec)}
	tun := pubsub.UDPTuning{SendQueue: *sendQ, RecvQueue: *recvQ, FlushInterval: *flush}
	if dynamic {
		tun.LearnPeers = true
		tun.Suspicion = *suspicion
	}
	subTopics := make([]topic.Topic, *nodes)
	for i := range subTopics {
		if i < numSubs {
			subTopics[i] = eventTopic
		} else {
			subTopics[i] = decoyTopic
		}
	}

	// Build the mesh: every node binds an ephemeral loopback socket
	// first (addresses must be known before wiring), then the circulant
	// topology is applied — the whole visible set under static
	// membership, forward seeds only under dynamic, where the reverse
	// arcs are learned from heartbeat datagram sources.
	ms := &mesh{cfg: meshCfg{
		hb: *hb, tun: tun, dynamic: dynamic, flight: *flight,
		subTopics: subTopics, tr: tr,
	}}
	ms.visible, ms.forward = circulant(*nodes, *vis)
	ms.nodes = make([]*pubsub.Node, *nodes)
	ms.addrs = make([]string, *nodes)
	defer ms.closeAll()
	for i := range ms.nodes {
		n, err := ms.buildNode(i, "127.0.0.1:0", nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: node %d: %v\n", i, err)
			return 2
		}
		ms.nodes[i] = n
		ms.addrs[i] = n.LocalAddr()
	}
	for i, n := range ms.nodes {
		for _, p := range ms.peersFor(i) {
			if err := n.AddPeer(p); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				return 2
			}
		}
	}

	// Observability: per-node flight recorders (armed in buildNode),
	// every node's counters in one registry, and an optional HTTP
	// listener for live scrapes and flight dumps. Registration is
	// per-instance; recovered instances keep the original instance's
	// registration (the registry is first-wins), so scrape series stay
	// stable across churn even though a recovered node's counters
	// restart — the totals in the final report use mesh.totals, which
	// does account churn.
	reg := obs.NewRegistry()
	reg.CounterFunc("repro_loadgen_published_total",
		"events published by the harness", func() uint64 { return uint64(tr.pubs.Load()) })
	reg.CounterFunc("repro_loadgen_delivered_total",
		"tracked deliveries observed across the mesh", func() uint64 { return uint64(tr.gots.Load()) })
	reg.GaugeFunc("repro_loadgen_nodes",
		"mesh size", func() float64 { return float64(*nodes) })
	reg.GaugeFunc("repro_loadgen_nodes_up",
		"nodes currently up (mesh size minus crashed)", func() float64 {
			ms.mu.Lock()
			defer ms.mu.Unlock()
			up := 0
			for _, n := range ms.nodes {
				if n != nil {
					up++
				}
			}
			return float64(up)
		})
	for _, n := range ms.nodes {
		n.RegisterMetrics(reg)
	}
	if *metricsAddr != "" {
		mux := obs.NewMux(reg)
		mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
			i, err := strconv.Atoi(r.URL.Query().Get("node"))
			if err != nil || i < 0 || i >= *nodes {
				http.Error(w, fmt.Sprintf("usage: /flight?node=<0..%d>", *nodes-1), http.StatusBadRequest)
				return
			}
			n := ms.node(i)
			if n == nil {
				http.Error(w, fmt.Sprintf("node %d is down (churn)", i), http.StatusNotFound)
				return
			}
			if err := n.WriteFlight(w); err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
			}
		})
		srv, err := obs.Serve(*metricsAddr, mux)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: metrics: %v\n", err)
			return 2
		}
		defer srv.Close()
		// The bound address line is machine-readable on purpose: tests
		// and scripts bind :0 and scrape whatever port came back.
		fmt.Printf("metrics: http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}

	// The same generator stream the simulator would run.
	rng := rand.New(rand.NewSource(*seed))
	gen, err := workload.Build(spec.Name, spec.Params, workload.Env{
		Nodes:      *nodes,
		Rand:       rng,
		Warmup:     *warmup,
		Measure:    *duration,
		EventTopic: eventTopic,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 2
	}

	fmt.Printf("loadgen: %d nodes (%d subscribers), visibility %.2f (%s membership), %s + %s %s workload, hb %s, churn %.2f\n",
		*nodes, numSubs, *vis, *membership, *warmup, *duration, *wkld, *hb, *churn)

	start := time.Now()
	end := start.Add(*warmup + *duration)
	stopProgress := func() {}
	if *progress > 0 {
		done := make(chan struct{})
		var once sync.Once
		stopProgress = func() { once.Do(func() { close(done) }) }
		go func() {
			tick := time.NewTicker(*progress)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					_, w := ms.totals()
					crashes, recoveries := ms.churnCounts()
					fmt.Fprintf(os.Stderr, "progress: t=%-6s published %d  delivered %d  datagrams %d  drops send %d recv %d  churn %d/%d\n",
						time.Since(start).Round(time.Second), tr.pubs.Load(), tr.gots.Load(),
						w.DatagramsSent, w.Dropped, w.RecvDropped, crashes, recoveries)
				}
			}
		}()
	}
	defer stopProgress()
	// Throughput and message counters cover the measurement window only:
	// baselines are snapshotted once warm-up ends.
	time.Sleep(time.Until(start.Add(*warmup)))
	baseProto, baseWire := ms.totals()
	measureStart := time.Now()

	// The op loop executes the merged stream with the sim runner's
	// semantics: publishes on down nodes are silently skipped, anonymous
	// publishes pick a random subscriber index (down or not — skipped if
	// down), eligibility counts ALL subscribed indices regardless of
	// liveness, and crash/recover hit real sockets.
	published := 0
	for {
		op, ok := gen.Next()
		if !ok {
			break
		}
		time.Sleep(time.Until(start.Add(op.At)))
		switch op.Kind {
		case workload.Publish:
			idx := op.Node
			if idx < 0 {
				idx = rng.Intn(numSubs) // anonymous publish: a random subscriber
			}
			n := ms.node(idx)
			if n == nil {
				continue // publisher is down: the sim skips these too
			}
			tp := op.Topic
			if tp.IsZero() {
				tp = eventTopic
			}
			eligible := numSubs
			if idx < numSubs {
				eligible-- // the publisher doesn't count toward its own event
			}
			id, err := n.Publish(tp, []byte("soak payload"), op.Validity)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: publish: %v\n", err)
				return 2
			}
			tr.published(id, eligible)
			published++
		case workload.Crash:
			ms.crash(op.Node)
		case workload.Recover:
			ms.recover(op.Node)
		case workload.Subscribe, workload.Unsubscribe:
			n := ms.node(op.Node)
			if n == nil {
				continue
			}
			tp := op.Topic
			if tp.IsZero() {
				tp = eventTopic
			}
			if op.Kind == workload.Subscribe {
				_ = n.Subscribe(tp)
			} else {
				n.Unsubscribe(tp)
			}
		}
	}
	time.Sleep(time.Until(end))
	// Drain grace: events published near the end are still spreading.
	// Wait until the delivery count stops moving (or a hard cap), so the
	// ratio measures the protocol rather than the harness's patience —
	// race-instrumented or loaded runs legitimately take longer.
	lastGot := -1
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		tr.mu.Lock()
		got := 0
		for _, rec := range tr.events {
			got += rec.got
		}
		tr.mu.Unlock()
		if got == lastGot {
			break
		}
		lastGot = got
		time.Sleep(300 * time.Millisecond)
	}

	proto, wire := ms.totals()
	proto = subStats(proto, baseProto)
	wire = subWire(wire, baseWire)
	elapsed := time.Since(measureStart).Seconds()
	crashes, recoveries := ms.churnCounts()

	tr.mu.Lock()
	var gotSum, eligSum int
	for _, rec := range tr.events {
		gotSum += rec.got
		eligSum += rec.eligible
	}
	realRatio := 0.0
	if eligSum > 0 {
		realRatio = float64(gotSum) / float64(eligSum)
	}
	lat := tr.latency
	tr.mu.Unlock()

	protoMsgs := proto.HeartbeatsSent + proto.IDListsSent + proto.EventMsgsSent
	msgsPerDelivery := math.Inf(1)
	if gotSum > 0 {
		msgsPerDelivery = float64(protoMsgs) / float64(gotSum)
	}
	dps := float64(wire.DatagramsSent) / elapsed

	fmt.Printf("real:  published %d  delivered %d/%d (ratio %.3f)\n", published, gotSum, eligSum, realRatio)
	fmt.Printf("real:  proto msgs %d (%.1f per delivery)  datagrams %.0f/s  batches %d  mmsg sends %d\n",
		protoMsgs, msgsPerDelivery, dps, wire.Batches, wire.MmsgSends)
	fmt.Printf("real:  latency ms p50 %.1f  p90 %.1f  p99 %.1f  (n=%d)\n",
		lat.Quantile(0.50)*1e3, lat.Quantile(0.90)*1e3, lat.Quantile(0.99)*1e3, lat.N())
	fmt.Printf("real:  drops send %d recv %d  decode errs %d  send errs %d\n",
		wire.Dropped, wire.RecvDropped, wire.DecodeErrors, wire.SendErrors)
	if dynamic || crashes > 0 {
		fmt.Printf("real:  membership peers learned %d  evicted %d  crashes %d  recoveries %d\n",
			wire.PeersLearned, wire.PeersEvicted, crashes, recoveries)
	}

	// The matching simulation: same roster, same workload stream spec,
	// same heartbeat tuning, full radio connectivity standing in for the
	// loopback mesh (the partial-visibility gap between the two is part
	// of what the reported ratio_gap measures).
	simRes, err := netsim.Run(netsim.Scenario{
		Name:  "loadgen-mirror",
		Nodes: *nodes,
		Seed:  *seed,
		Protocol: netsim.FrugalSpec(netsim.CoreTuning{
			HBDelay: *hb, HBLowerBound: *hb, HBUpperBound: *hb,
		}),
		Mobility:           netsim.MobilitySpec{Kind: netsim.StaticNodes, Area: geo.NewRect(200, 200)},
		MAC:                mac.DefaultConfig(339), // diag(200,200) < 339 m: everyone hears everyone
		EventTopic:         eventTopic,
		DecoyTopic:         decoyTopic,
		SubscriberFraction: *subs,
		Workload:           netsim.WorkloadSpec{Name: spec.Name, Params: spec.Params},
		Warmup:             *warmup,
		Measure:            *duration,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: sim mirror: %v\n", err)
		return 2
	}
	simRatio := simRes.Reliability()
	fmt.Printf("sim:   delivery ratio %.3f  events/process %.1f  latency ms p50 %.1f p99 %.1f\n",
		simRatio, simRes.EventsSentPerProcess(),
		simRes.Latency.Quantile(0.50)*1e3, simRes.Latency.Quantile(0.99)*1e3)
	fmt.Printf("diff:  |real - sim| delivery ratio = %.3f\n", math.Abs(realRatio-simRatio))
	stopProgress()

	rep := report{
		Nodes:           *nodes,
		Subscribers:     numSubs,
		Workload:        *wkld,
		Visibility:      *vis,
		Membership:      *membership,
		ChurnFraction:   *churn,
		Crashes:         crashes,
		Recoveries:      recoveries,
		WarmupSeconds:   warmup.Seconds(),
		MeasureSeconds:  duration.Seconds(),
		Published:       published,
		Delivered:       gotSum,
		Eligible:        eligSum,
		RealRatio:       realRatio,
		SimRatio:        simRatio,
		RatioGap:        math.Abs(realRatio - simRatio),
		ProtoMsgs:       protoMsgs,
		DatagramsPerSec: dps,
		Batches:         wire.Batches,
		MmsgSends:       wire.MmsgSends,
		MmsgRecvs:       wire.MmsgRecvs,
		PeersLearned:    wire.PeersLearned,
		PeersEvicted:    wire.PeersEvicted,
		LatencyMsP50:    lat.Quantile(0.50) * 1e3,
		LatencyMsP90:    lat.Quantile(0.90) * 1e3,
		LatencyMsP99:    lat.Quantile(0.99) * 1e3,
		SendDrops:       wire.Dropped,
		RecvDrops:       wire.RecvDropped,
		DecodeErrors:    wire.DecodeErrors,
		SendErrors:      wire.SendErrors,
	}
	var checkFailure string
	if *check {
		switch gap := rep.RatioGap; {
		case published == 0 || gotSum == 0:
			checkFailure = fmt.Sprintf("no deliveries (published %d, delivered %d)", published, gotSum)
		case wire.DecodeErrors != 0:
			checkFailure = fmt.Sprintf("%d decode errors on the wire", wire.DecodeErrors)
		case gap > *band:
			checkFailure = fmt.Sprintf("delivery ratio %.3f vs sim %.3f: gap %.3f > band %.3f", realRatio, simRatio, gap, *band)
		case *minDPS > 0 && dps < *minDPS:
			checkFailure = fmt.Sprintf("throughput %.0f datagrams/s < required %.0f", dps, *minDPS)
		case dynamic && wire.PeersLearned == 0:
			checkFailure = "dynamic membership never learned a peer from a datagram source"
		case *churn > 0 && crashes == 0:
			checkFailure = "churn requested but no crash wave executed (window too short for the stagger?)"
		case *churn > 0 && *churnDown >= 0 && recoveries == 0:
			checkFailure = "churned nodes never recovered"
		case dynamic && *churn > 0 && *churnDown > *suspicion && wire.PeersEvicted == 0:
			checkFailure = "downtime exceeded the suspicion window but no peer was evicted"
		}
		rep.Check = &checkReport{Passed: checkFailure == "", Failure: checkFailure}
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: report: %v\n", err)
		return 2
	}
	blob = append(blob, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: report: %v\n", err)
			return 2
		}
	}
	if *check && checkFailure != "" {
		// Failures must be diagnosable from CI logs alone: the message,
		// the full report, and a recent-history flight dump all land on
		// stderr (plus the report file when -json is set).
		fmt.Fprintf(os.Stderr, "loadgen: CHECK FAILED: %s\n", checkFailure)
		if *jsonOut != "" {
			fmt.Fprintf(os.Stderr, "loadgen: full report (also at %s):\n%s", *jsonOut, blob)
		} else {
			fmt.Fprintf(os.Stderr, "loadgen: full report:\n%s", blob)
		}
		if *flight > 0 {
			if n := ms.node(0); n != nil {
				fmt.Fprintln(os.Stderr, "loadgen: flight recorder, node 0:")
				_ = n.WriteFlight(os.Stderr)
			}
		}
		return 1
	}
	if *check {
		fmt.Println("loadgen: CHECK OK")
	}
	return 0
}

// report is the -json machine-readable run summary; the CI soak asserts
// against it instead of scraping the human-oriented stdout lines.
type report struct {
	Nodes           int          `json:"nodes"`
	Subscribers     int          `json:"subscribers"`
	Workload        string       `json:"workload"`
	Visibility      float64      `json:"visibility"`
	Membership      string       `json:"membership"`
	ChurnFraction   float64      `json:"churn_fraction"`
	Crashes         int          `json:"crashes"`
	Recoveries      int          `json:"recoveries"`
	WarmupSeconds   float64      `json:"warmup_seconds"`
	MeasureSeconds  float64      `json:"measure_seconds"`
	Published       int          `json:"published"`
	Delivered       int          `json:"delivered"`
	Eligible        int          `json:"eligible"`
	RealRatio       float64      `json:"real_delivery_ratio"`
	SimRatio        float64      `json:"sim_delivery_ratio"`
	RatioGap        float64      `json:"ratio_gap"`
	ProtoMsgs       uint64       `json:"proto_msgs"`
	DatagramsPerSec float64      `json:"datagrams_per_second"`
	Batches         uint64       `json:"batches"`
	MmsgSends       uint64       `json:"mmsg_sends"`
	MmsgRecvs       uint64       `json:"mmsg_recvs"`
	PeersLearned    uint64       `json:"peers_learned"`
	PeersEvicted    uint64       `json:"peers_evicted"`
	LatencyMsP50    float64      `json:"latency_ms_p50"`
	LatencyMsP90    float64      `json:"latency_ms_p90"`
	LatencyMsP99    float64      `json:"latency_ms_p99"`
	SendDrops       uint64       `json:"send_drops"`
	RecvDrops       uint64       `json:"recv_drops"`
	DecodeErrors    uint64       `json:"decode_errors"`
	SendErrors      uint64       `json:"send_errors"`
	Check           *checkReport `json:"check,omitempty"`
}

// checkReport records the -check verdict inside the JSON report.
type checkReport struct {
	Passed  bool   `json:"passed"`
	Failure string `json:"failure,omitempty"`
}

func addStats(a, b pubsub.Stats) pubsub.Stats {
	a.HeartbeatsSent += b.HeartbeatsSent
	a.IDListsSent += b.IDListsSent
	a.EventMsgsSent += b.EventMsgsSent
	a.EventsSent += b.EventsSent
	a.EventsReceived += b.EventsReceived
	a.Delivered += b.Delivered
	a.Duplicates += b.Duplicates
	a.Parasites += b.Parasites
	a.Published += b.Published
	return a
}

func subStats(a, b pubsub.Stats) pubsub.Stats {
	a.HeartbeatsSent -= b.HeartbeatsSent
	a.IDListsSent -= b.IDListsSent
	a.EventMsgsSent -= b.EventMsgsSent
	a.EventsSent -= b.EventsSent
	a.EventsReceived -= b.EventsReceived
	a.Delivered -= b.Delivered
	a.Duplicates -= b.Duplicates
	a.Parasites -= b.Parasites
	a.Published -= b.Published
	return a
}

func addWire(a, b pubsub.TransportStats) pubsub.TransportStats {
	a.DatagramsSent += b.DatagramsSent
	a.DatagramsReceived += b.DatagramsReceived
	a.DecodeErrors += b.DecodeErrors
	a.SendErrors += b.SendErrors
	a.Dropped += b.Dropped
	a.RecvDropped += b.RecvDropped
	a.Batches += b.Batches
	a.PeersLearned += b.PeersLearned
	a.PeersEvicted += b.PeersEvicted
	a.MmsgSends += b.MmsgSends
	a.MmsgRecvs += b.MmsgRecvs
	return a
}

func subWire(a, b pubsub.TransportStats) pubsub.TransportStats {
	a.DatagramsSent -= b.DatagramsSent
	a.DatagramsReceived -= b.DatagramsReceived
	a.DecodeErrors -= b.DecodeErrors
	a.SendErrors -= b.SendErrors
	a.Dropped -= b.Dropped
	a.RecvDropped -= b.RecvDropped
	a.Batches -= b.Batches
	a.PeersLearned -= b.PeersLearned
	a.PeersEvicted -= b.PeersEvicted
	a.MmsgSends -= b.MmsgSends
	a.MmsgRecvs -= b.MmsgRecvs
	return a
}
