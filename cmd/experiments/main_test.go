package main

import (
	"strings"
	"testing"

	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/workload"
)

// TestListingMatchesRegistries pins the -list contract: the listing is
// generated from the experiment, scenario and protocol registries, so
// every registered id/name appears exactly once and nothing else does —
// no silently unreachable scenarios or protocols, no stale catalog
// lines.
func TestListingMatchesRegistries(t *testing.T) {
	out := listing()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var ids []string
	for _, l := range lines {
		if !strings.HasPrefix(l, "  ") {
			continue // section headers
		}
		fields := strings.Fields(l)
		if len(fields) == 0 {
			t.Fatalf("blank catalog line in listing:\n%s", out)
		}
		ids = append(ids, fields[0])
	}
	var want []string
	for _, d := range exp.All() {
		want = append(want, d.ID)
	}
	want = append(want, netsim.ScenarioNames()...)
	want = append(want, proto.ProtocolNames()...)
	want = append(want, workload.WorkloadNames()...)
	if len(ids) != len(want) {
		t.Fatalf("listing has %d entries, registries have %d:\n%s", len(ids), len(want), out)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("listing entry %d = %q, want %q (registry order)", i, ids[i], want[i])
		}
	}
	// The acceptance headline: the new baseline is in the catalog.
	if !strings.Contains(out, "gossip-pushpull") {
		t.Fatalf("listing does not mention gossip-pushpull:\n%s", out)
	}
}

// TestScenarioListingRunnable double-checks the other direction: every
// name the listing advertises resolves through the same lookups the
// flags use.
func TestScenarioListingRunnable(t *testing.T) {
	for _, d := range exp.All() {
		if _, ok := exp.Lookup(d.ID); !ok {
			t.Fatalf("listed experiment %q not resolvable", d.ID)
		}
	}
	for _, name := range netsim.ScenarioNames() {
		if _, ok := netsim.LookupScenario(name); !ok {
			t.Fatalf("listed scenario %q not resolvable", name)
		}
	}
	for _, name := range proto.ProtocolNames() {
		if _, ok := proto.LookupProtocol(name); !ok {
			t.Fatalf("listed protocol %q not resolvable", name)
		}
	}
	for _, name := range workload.WorkloadNames() {
		if _, ok := workload.LookupWorkload(name); !ok {
			t.Fatalf("listed workload %q not resolvable", name)
		}
	}
}
