// Command experiments regenerates the paper's figures and tables and
// runs the registry-backed scenario sweeps.
//
// Usage:
//
//	experiments -fig fig13               # one experiment, scaled-down
//	experiments -fig all -full -seeds 30 # paper-scale everything (hours)
//	experiments -scenario manhattan      # every protocol, one scenario
//	experiments -scenario manhattan -proto gossip-pushpull
//	experiments -proto gossip-pushpull   # one protocol, every scenario
//	experiments -parallel 8              # cap the worker pool (0 = NumCPU)
//	experiments -list
//
// Scaled-down runs preserve the paper's node density and parameter shapes
// while finishing in seconds to minutes; -full selects the paper's exact
// environment (150 nodes on 25 km^2, 600 s warm-up, 30 seeds).
//
// Sweep points fan out over a worker pool (one simulation per job); a
// netsim result is a pure function of (Scenario, Seed) and aggregation
// happens in sweep order, so the printed tables are byte-identical at
// any -parallel value.
//
// # Experiment catalog (-fig)
//
// One experiment per figure/table of the paper's evaluation, plus
// ablations and extensions:
//
//	fig11..fig12   reliability on random waypoint (speeds, subscribers)
//	fig13..fig16   reliability on the city section (heartbeat bound,
//	               subscribers, publisher spread, validity)
//	fig17..fig20   frugality: bandwidth, copies, duplicates, parasites
//	ablation       design-choice ablations (back-off, suppression, id
//	               exchange, GC, adaptive heartbeat)
//	ext-shadowing  reliability under log-normal shadowing
//	ext-storm      frugal vs broadcast-storm schemes (Ni et al.)
//	scenarios      frugal vs baselines across every registered scenario
//
// # Protocol catalog (-proto)
//
// Protocols are registered by name in the internal/proto registry
// (each protocol package registers itself; see ARCHITECTURE.md "Adding
// a protocol"). The scenario sweeps run every registered protocol;
// -proto <name> restricts them to one. The built-ins:
//
//	frugal                        the paper's protocol: adaptive
//	                              heartbeats, id pre-exchange,
//	                              proportional back-off
//	simple-flooding               approach (1): rebroadcast everything
//	                              each period
//	interests-aware-flooding      approach (2): store/rebroadcast only
//	                              subscribed events
//	neighbors-interests-flooding  approach (3): one addressed copy per
//	                              interested neighbor
//	probabilistic-broadcast       Ni et al.: single-shot relay with
//	                              probability P
//	counter-based-broadcast       Ni et al.: single-shot relay unless C
//	                              copies were overheard
//	gossip-pushpull               push-pull rumor mongering: fanout-
//	                              bounded pushes + digest-driven pulls
//
// # Scenario catalog (-scenario)
//
// Scenarios are full declarative workloads registered with
// netsim.RegisterScenario; -scenario <name> sweeps one of them across
// every registered protocol. Each sweep finishes in about a second at
// the default 3 seeds. The built-ins:
//
//	campus           the paper's city section: 15 nodes on the synthetic
//	                 campus street grid, one 150 s event, frugal tuning
//	                 from Section 5.2
//	waypoint         the paper's random waypoint at reduced scale: 40
//	                 nodes at 10 m/s on 6.7 km^2 (6 nodes/km^2), 80%
//	                 subscribers, one 120 s event
//	manhattan        urban VANET: 40 vehicles on a 990x770 m Manhattan
//	                 grid with a deterministic city-wide traffic-light
//	                 schedule and avenue/side-street speed tiers, a
//	                 3-event burst of 120 s events, 100 m urban radio
//	                 range
//	manhattan-churn  manhattan plus churn: two vehicles crash mid-window
//	                 and one recovers with empty tables
//	highway          highway convoy: 32 vehicles in 4 platoon speed
//	                 tiers (24-32 m/s) on a 3.5 km bidirectional
//	                 corridor with on/off-ramps, two 90 s events
//
// The -list output is generated from the same registries the flags
// consult, so it cannot drift from what actually runs (a test enforces
// this).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
	"repro/internal/netsim"
	"repro/internal/proto"
)

// listing renders the -list output from the experiment, scenario and
// protocol registries. Tests assert it covers all three exactly.
func listing() string {
	var b strings.Builder
	b.WriteString("experiments (-fig):\n")
	for _, d := range exp.All() {
		fmt.Fprintf(&b, "  %-15s %s\n", d.ID, d.Title)
	}
	b.WriteString("\nscenarios (-scenario, swept across every protocol):\n")
	for _, d := range netsim.Scenarios() {
		fmt.Fprintf(&b, "  %-15s %s (default sweep %s)\n", d.Name, d.Description, d.Runtime)
	}
	b.WriteString("\nprotocols (-proto, restricts the scenario sweeps):\n")
	for _, d := range proto.Protocols() {
		fmt.Fprintf(&b, "  %-28s %s\n", d.Name, d.Description)
	}
	return b.String()
}

func main() {
	var (
		fig       = flag.String("fig", "", "experiment id (fig11..fig20, ablation, ext-*, scenarios) or 'all'")
		scenario  = flag.String("scenario", "", "registered scenario to sweep across the protocols (see -list)")
		protoFlag = flag.String("proto", "", "restrict the scenario sweeps to one registered protocol (see -list)")
		full      = flag.Bool("full", false, "paper-scale parameters (slow)")
		seeds     = flag.Int("seeds", 0, "runs per sweep point (0 = experiment default)")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = NumCPU); tables are byte-identical at any value")
		list      = flag.Bool("list", false, "list experiments, scenarios and protocols, then exit")
		verbose   = flag.Bool("v", false, "print per-point progress")
	)
	flag.Parse()

	if *list {
		fmt.Print(listing())
		return
	}
	if *fig != "" && *scenario != "" {
		fmt.Fprintln(os.Stderr, "use either -fig or -scenario, not both")
		os.Exit(2)
	}
	if *protoFlag != "" {
		if _, ok := proto.LookupProtocol(*protoFlag); !ok {
			fmt.Fprintf(os.Stderr, "unknown protocol %q; valid ids:\n\n%s", *protoFlag, listing())
			os.Exit(2)
		}
		if *fig != "" && *fig != "scenarios" {
			fmt.Fprintln(os.Stderr, "-proto applies to the scenario sweeps; combine it with -scenario or -fig scenarios")
			os.Exit(2)
		}
		if *fig == "" && *scenario == "" {
			*fig = "scenarios"
		}
	}
	if *fig == "" && *scenario == "" {
		*fig = "all"
	}

	opts := exp.Options{Seeds: *seeds, Full: *full, Parallel: *parallel, Protocol: *protoFlag}
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}

	var defs []exp.Definition
	switch {
	case *scenario != "":
		if _, ok := netsim.LookupScenario(*scenario); !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q; registered scenarios:\n\n%s", *scenario, listing())
			os.Exit(2)
		}
		name := *scenario
		defs = []exp.Definition{{
			ID:    "scenario-" + name,
			Title: "protocol sweep on scenario " + name,
			Run:   func(o exp.Options) (*exp.Output, error) { return exp.ScenarioSweep(name, o) },
		}}
	case *fig == "all":
		defs = exp.All()
	default:
		d, ok := exp.Lookup(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; valid ids:\n\n%s", *fig, listing())
			os.Exit(2)
		}
		defs = []exp.Definition{d}
	}

	for _, d := range defs {
		start := time.Now()
		fmt.Printf("== %s: %s\n", d.ID, d.Title)
		out, err := d.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", d.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", d.ID, time.Since(start).Round(time.Millisecond))
	}
}
