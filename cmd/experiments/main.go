// Command experiments regenerates the paper's figures and tables.
//
// Usage:
//
//	experiments -fig fig13              # one experiment, scaled-down
//	experiments -fig all -full -seeds 30 # paper-scale everything (hours)
//	experiments -parallel 8              # cap the worker pool (0 = NumCPU)
//	experiments -list
//
// Scaled-down runs preserve the paper's node density and parameter shapes
// while finishing in seconds to minutes; -full selects the paper's exact
// environment (150 nodes on 25 km^2, 600 s warm-up, 30 seeds).
//
// Sweep points fan out over a worker pool (one simulation per job); a
// netsim result is a pure function of (Scenario, Seed) and aggregation
// happens in sweep order, so the printed tables are byte-identical at
// any -parallel value.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "experiment id (fig11..fig20, ablation) or 'all'")
		full     = flag.Bool("full", false, "paper-scale parameters (slow)")
		seeds    = flag.Int("seeds", 0, "runs per sweep point (0 = experiment default)")
		parallel = flag.Int("parallel", 0, "concurrent simulations (0 = NumCPU); tables are byte-identical at any value")
		list     = flag.Bool("list", false, "list experiments and exit")
		verbose  = flag.Bool("v", false, "print per-point progress")
	)
	flag.Parse()

	if *list {
		for _, d := range exp.All() {
			fmt.Printf("%-10s %s\n", d.ID, d.Title)
		}
		return
	}

	opts := exp.Options{Seeds: *seeds, Full: *full, Parallel: *parallel}
	if *verbose {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}

	var defs []exp.Definition
	if *fig == "all" {
		defs = exp.All()
	} else {
		d, ok := exp.Lookup(*fig)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *fig)
			os.Exit(2)
		}
		defs = []exp.Definition{d}
	}

	for _, d := range defs {
		start := time.Now()
		fmt.Printf("== %s: %s\n", d.ID, d.Title)
		out, err := d.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", d.ID, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", d.ID, time.Since(start).Round(time.Millisecond))
	}
}
