// Command frugalsim runs a single dissemination scenario and prints its
// measurements: reliability, per-process traffic, duplicates and
// parasites.
//
// Scenarios come in two flavors: ad-hoc ones assembled from flags, and
// registered ones from the netsim scenario registry (the same catalog
// cmd/experiments -list enumerates).
//
// Examples:
//
//	frugalsim -nodes 50 -mobility rwp -speed 10 -subscribers 0.8 \
//	          -events 3 -validity 120s
//	frugalsim -mobility city -nodes 15 -range 44 -protocol frugal
//	frugalsim -mobility manhattan -nodes 40 -range 100
//	frugalsim -mobility highway -nodes 32 -range 250
//	frugalsim -protocol simple-flooding -events 5
//	frugalsim -protocol gossip-pushpull -events 5
//	frugalsim -scenario manhattan -seed 3        # registered scenario
//	frugalsim -scenario highway -protocol counter-based-broadcast
//	frugalsim -scenario stadium                  # generated flash crowd
//	frugalsim -workload poisson -events 0        # generated traffic only
//	frugalsim -workload churn-nodes -events 3    # churn under traffic
//	frugalsim -scenario metro-slice -sample 5s -series-out curve.csv
//	frugalsim -scenario metro-5k -cpuprofile cpu.pprof
//
// -sample records a deterministic per-window time-series during the run
// (delivery ratio, in-flight transmissions, protocol/MAC counter
// deltas); it never changes the measured result — fingerprints are
// byte-identical with sampling on or off. -series-out writes the curve
// (.json = JSON, else CSV). -cpuprofile/-memprofile capture pprof
// profiles of the run itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/trace"
)

// writeSeries dumps a sampled run's curve; the extension picks the
// encoder (.json = JSON document, anything else = CSV).
func writeSeries(path string, s *netsim.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = s.WriteJSON(f)
	} else {
		err = s.WriteCSV(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func main() {
	var (
		scenario = flag.String("scenario", "",
			"registered scenario name (overrides the ad-hoc flags; see 'experiments -list')")
		protocol = flag.String("protocol", "frugal",
			"registered protocol name (frugal, the flooding/storm baselines, gossip-pushpull; see 'experiments -list')")
		wkld = flag.String("workload", "",
			"registered workload generator merged into the ad-hoc scenario (poisson, flash-crowd, churn-nodes, ...; see 'experiments -list')")
		nodes    = flag.Int("nodes", 50, "number of processes")
		mobility = flag.String("mobility", "rwp", "rwp | city | manhattan | highway | static")
		side     = flag.Float64("side", 2887, "square area side in meters (rwp/static)")
		speedMin = flag.Float64("speed-min", 0, "min speed m/s (rwp; 0 = same as -speed)")
		speed    = flag.Float64("speed", 10, "max speed m/s (rwp)")
		radio    = flag.Float64("range", 339, "radio range in meters")
		subs     = flag.Float64("subscribers", 0.8, "fraction subscribed to the event topic")
		events   = flag.Int("events", 1, "events to publish")
		validity = flag.Duration("validity", 120*time.Second, "event validity period")
		warmup   = flag.Duration("warmup", 60*time.Second, "warm-up before measurement")
		hbUpper  = flag.Duration("hb-upper", time.Second, "heartbeat upper bound (0 = none)")
		seed     = flag.Int64("seed", 1, "simulation seed")
		tiles    = flag.Int("tiles", 0,
			"geo tiles the run is sharded across (0 = auto by size, 1 = single engine); results are byte-identical at any value")
		showTrace = flag.Int("trace", 0, "print the last N timeline records (0 = off)")
		timeline  = flag.Bool("timeline", false, "print per-event coverage over time")
		sample    = flag.Duration("sample", 0,
			"record a time-series point every period (0 = off); sampling never changes results")
		seriesOut = flag.String("series-out", "",
			"write the sampled time-series to this file (.json = JSON, otherwise CSV; requires -sample)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile after the run to this file")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// Unknown registry ids (protocol, scenario, workload) all behave the
	// same way: print the matching catalog and exit 1. Structural flag
	// misuse keeps the conventional exit 2.
	spec, ok := netsim.ParseProtocol(*protocol)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown protocol %q; registered protocols:\n", *protocol)
		for _, name := range netsim.ProtocolNames() {
			fmt.Fprintf(os.Stderr, "  %s\n", name)
		}
		os.Exit(1)
	}

	var sc netsim.Scenario
	if *scenario != "" {
		// The template fixes the environment and workload; only the
		// protocol under test, the seed and the output flags remain
		// meaningful. Reject the rest instead of silently ignoring it.
		compatible := map[string]bool{
			"scenario": true, "protocol": true, "seed": true,
			"tiles": true, "trace": true, "timeline": true,
			"sample": true, "series-out": true,
			"cpuprofile": true, "memprofile": true,
		}
		for name := range explicit {
			if !compatible[name] {
				fmt.Fprintf(os.Stderr,
					"-%s has no effect with -scenario (the registered template fixes it); drop the flag or build an ad-hoc scenario without -scenario\n",
					name)
				os.Exit(2)
			}
		}
		def, ok := netsim.LookupScenario(*scenario)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown scenario %q; registered scenarios:\n", *scenario)
			for _, d := range netsim.Scenarios() {
				fmt.Fprintf(os.Stderr, "  %-15s %s\n", d.Name, d.Description)
			}
			os.Exit(1)
		}
		sc = def.Instantiate(*seed)
		if explicit["protocol"] && spec.String() != sc.Protocol.String() {
			// Switching protocol on a template: the template's tuning
			// belongs to its own protocol, so the substitute runs with
			// its registered defaults.
			sc.Protocol = spec
		}
	} else {
		if spec.String() == "frugal" {
			// The ad-hoc frugal scenario exposes the heartbeat bound.
			spec = netsim.FrugalSpec(netsim.CoreTuning{
				HBUpperBound: *hbUpper,
				UseSpeed:     true,
			})
		}
		sc = netsim.Scenario{
			Name:               "frugalsim",
			Nodes:              *nodes,
			Seed:               *seed,
			Protocol:           spec,
			MAC:                mac.DefaultConfig(*radio),
			SubscriberFraction: *subs,
			Warmup:             *warmup,
			Measure:            *validity + 5*time.Second,
		}
		switch *mobility {
		case "rwp":
			lo := *speedMin
			if lo == 0 {
				lo = *speed
			}
			sc.Mobility = netsim.MobilitySpec{
				Kind:     netsim.RandomWaypoint,
				Area:     geo.NewRect(*side, *side),
				MinSpeed: lo,
				MaxSpeed: *speed,
				Pause:    time.Second,
			}
		case "static":
			sc.Mobility = netsim.MobilitySpec{
				Kind: netsim.StaticNodes,
				Area: geo.NewRect(*side, *side),
			}
		case "city":
			sc.Mobility = netsim.MobilitySpec{
				Kind:      netsim.CitySection,
				StopProb:  0.3,
				StopMin:   2 * time.Second,
				StopMax:   10 * time.Second,
				DestPause: 5 * time.Second,
			}
		case "manhattan":
			sc.Mobility = netsim.MobilitySpec{
				Kind:        netsim.ManhattanGrid,
				LightCycle:  30 * time.Second,
				RedFraction: 0.4,
				DestPause:   10 * time.Second,
			}
		case "highway":
			// Zero platoon/cruise fields select netsim's convoy defaults.
			sc.Mobility = netsim.MobilitySpec{Kind: netsim.HighwayConvoy}
		default:
			fmt.Fprintf(os.Stderr, "unknown mobility %q\n", *mobility)
			os.Exit(2)
		}
		for i := 0; i < *events; i++ {
			sc.Publications = append(sc.Publications, netsim.Publication{
				Offset:    time.Duration(i) * 500 * time.Millisecond,
				Publisher: -1,
				Validity:  *validity,
			})
		}
		if *wkld != "" {
			spec, ok := netsim.ParseWorkload(*wkld)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown workload %q; registered workloads:\n", *wkld)
				for _, d := range netsim.Workloads() {
					fmt.Fprintf(os.Stderr, "  %-12s %s\n", d.Name, d.Description)
				}
				os.Exit(1)
			}
			sc.Workload = spec
		}
	}
	sc.Tiles = *tiles
	sc.Sample = *sample
	if *seriesOut != "" && *sample <= 0 {
		fmt.Fprintln(os.Stderr, "-series-out requires -sample")
		os.Exit(2)
	}
	if *showTrace > 0 {
		sc.Trace = trace.New(*showTrace)
	}
	if *timeline {
		// CoverageAt replays the full delivery record list; the runner
		// only keeps it on request.
		sc.DeliveryLog = true
	}

	stopProfiles, err := obs.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	res, err := netsim.Run(sc)
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintln(os.Stderr, perr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *seriesOut != "" {
		if err := writeSeries(*seriesOut, res.Series); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	workloadNote := ""
	if !sc.Workload.IsZero() {
		workloadNote = fmt.Sprintf(" + %v workload", sc.Workload)
	}
	fmt.Printf("scenario: %s — %d nodes, %v mobility, %v, %.0f%% subscribers, %d event(s)%s\n",
		sc.Name, sc.Nodes, sc.Mobility.Kind, sc.Protocol,
		sc.SubscriberFraction*100, len(sc.Publications), workloadNote)
	fmt.Printf("simulated %v (wall %v)\n", sc.Warmup+sc.Measure, time.Since(start).Round(time.Millisecond))
	if ts := res.Tile; ts != nil {
		fmt.Printf("tiled across %d tiles: %d windows, %d border crossings, %d border frames, %d/%d frames fanned/serial\n",
			ts.Tiles, ts.Windows, ts.Crossings, ts.BorderFrames, ts.FannedFrames, ts.SerialFrames)
	}
	if s := res.Series; s != nil {
		note := ""
		if *seriesOut != "" {
			note = " -> " + *seriesOut
		}
		fmt.Printf("sampled %d time-series points every %v%s\n", len(s.Points), s.Period, note)
	}
	fmt.Println()

	tb := metrics.NewTable("per-process averages over the measurement window",
		"metric", "value")
	tb.AddRow("reliability", metrics.Pct(res.Reliability()))
	tb.AddRow("bandwidth (app bytes)", metrics.KB(res.AppBytesPerProcess()))
	tb.AddRow("event copies sent", metrics.F1(res.EventsSentPerProcess()))
	tb.AddRow("duplicates received", metrics.F1(res.DuplicatesPerProcess()))
	tb.AddRow("parasites received", metrics.F1(res.ParasitesPerProcess()))
	tb.AddRow("MAC frames lost (total)", fmt.Sprintf("%d", res.FramesLostTotal()))
	fmt.Println(tb)

	for _, o := range res.Outcomes {
		fmt.Printf("event %s by %v: delivered to %d/%d subscribers in time (%.1f%%)\n",
			o.ID.String()[:8], o.Publisher, o.DeliveredInTime, o.Eligible, 100*o.Reliability())
	}

	if *timeline {
		fmt.Println("\ncoverage over time:")
		for _, o := range res.Outcomes {
			fmt.Printf("event %s:", o.ID.String()[:8])
			for frac := 0.0; frac <= 1.0; frac += 0.125 {
				at := o.At.Add(time.Duration(frac * float64(o.Validity)))
				fmt.Printf("  %.0f%%@%ds", 100*res.CoverageAt(o.ID, at),
					int(frac*o.Validity.Seconds()))
			}
			fmt.Println()
		}
	}

	if sc.Trace != nil {
		fmt.Printf("\nlast %d timeline records:\n", sc.Trace.Len())
		if err := sc.Trace.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
