package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildFrugalsim compiles the command once into a temp dir; the
// unknown-id paths end in os.Exit, so they are pinned end-to-end
// through the real binary rather than in-process.
func buildFrugalsim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "frugalsim")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestUnknownIDsPrintCatalogAndExit1 pins the three unknown-id paths to
// the same contract: print the matching registry catalog on stderr and
// exit 1 (structural flag misuse stays exit 2, see below).
func TestUnknownIDsPrintCatalogAndExit1(t *testing.T) {
	bin := buildFrugalsim(t)
	cases := []struct {
		flag  string
		wants []string // catalog entries that must be listed
	}{
		{"-protocol", []string{"unknown protocol", "frugal", "gossip-pushpull", "simple-flooding"}},
		{"-scenario", []string{"unknown scenario", "campus", "manhattan", "metro-10k"}},
		{"-workload", []string{"unknown workload", "poisson", "churn-nodes", "diurnal"}},
	}
	for _, c := range cases {
		t.Run(c.flag, func(t *testing.T) {
			cmd := exec.Command(bin, c.flag, "no-such-id")
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("%s no-such-id: err = %v, want non-zero exit", c.flag, err)
			}
			if code := ee.ExitCode(); code != 1 {
				t.Fatalf("%s no-such-id exited %d, want 1\nstderr:\n%s", c.flag, code, stderr.String())
			}
			for _, w := range c.wants {
				if !strings.Contains(stderr.String(), w) {
					t.Fatalf("%s no-such-id stderr lacks %q:\n%s", c.flag, w, stderr.String())
				}
			}
		})
	}
}

// TestFlagMisuseKeepsExit2 pins the boundary: a structurally invalid
// invocation (an ad-hoc flag combined with -scenario) is usage error 2,
// distinct from the unknown-id exit 1.
func TestFlagMisuseKeepsExit2(t *testing.T) {
	bin := buildFrugalsim(t)
	cmd := exec.Command(bin, "-scenario", "campus", "-nodes", "5")
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("err = %v, want non-zero exit", err)
	}
	if code := ee.ExitCode(); code != 2 {
		t.Fatalf("flag misuse exited %d, want 2", code)
	}
}
